#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sel {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 4; ++i) small.add(i % 2);
  for (int i = 0; i < 400; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, Ci95NormalApproxForLargeN) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(i % 2);  // stddev ~0.5
  const double expected = 1.96 * s.stddev() / std::sqrt(100.0);
  EXPECT_NEAR(s.ci95_halfwidth(), expected, 1e-12);
}

TEST(SampleSet, EmptyDefaults) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSet, QuantileAfterMoreInserts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);  // triggers sort
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SampleSet, MergeCombinesSamples) {
  SampleSet a;
  SampleSet b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SampleSet, ClearResets) {
  SampleSet s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace sel
