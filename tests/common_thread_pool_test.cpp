#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sel {
namespace {

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  pool.submit([&x] { x = 42; }).get();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&hits](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForSumMatchesSequential) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallel_for(0, 10'000, [&sum](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum, 10'000LL * 9'999 / 2);
}

TEST(ThreadPool, ChunkedVariantCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for_chunks(0, 500, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ChunksAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(0, 100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 100u);
}

TEST(ThreadPool, ExceptionPropagatesFromBody) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllComplete) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&done] { done++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done, 200);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace sel
