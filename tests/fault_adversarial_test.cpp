// Adversarial durability tier: correlated crash bursts, byzantine mailbox
// acceptors, and the end-to-end soak acceptance — a publisher crashing
// mid-dissemination with a burst-crashed mailbox replica must not lose
// notifications when the replicated-mailbox tier is armed.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "common/rng.hpp"
#include "graph/profiles.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/mailbox.hpp"
#include "pubsub/multipath.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

TEST(FaultSpecAdversarial, ParsesAndRoundTripsAdversarialKnobs) {
  const auto spec = fault::FaultSpec::parse(
      "byz=0.15,bursts=2,burst_width=16,burst_spacing_s=450");
  EXPECT_DOUBLE_EQ(spec.byzantine, 0.15);
  EXPECT_EQ(spec.bursts, 2u);
  EXPECT_EQ(spec.burst_width, 16u);
  EXPECT_DOUBLE_EQ(spec.burst_spacing_s, 450.0);
  EXPECT_TRUE(spec.any());

  const auto back = fault::FaultSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(back.byzantine, spec.byzantine);
  EXPECT_EQ(back.bursts, spec.bursts);
  EXPECT_EQ(back.burst_width, spec.burst_width);
  EXPECT_DOUBLE_EQ(back.burst_spacing_s, spec.burst_spacing_s);

  // The long alias parses too, and a bursts-only spec is active.
  EXPECT_DOUBLE_EQ(fault::FaultSpec::parse("byzantine=0.5").byzantine, 0.5);
  EXPECT_TRUE(fault::FaultSpec::parse("bursts=1").any());
}

TEST(FaultPlanAdversarial, BurstScheduleIsPureInSeedAndSpec) {
  fault::FaultSpec spec;
  spec.bursts = 3;
  spec.burst_width = 8;
  spec.burst_spacing_s = 100.0;
  const fault::FaultPlan a(spec, 42, 64);
  const fault::FaultPlan b(spec, 42, 64);
  EXPECT_EQ(a.num_domains(), 8u);
  ASSERT_EQ(a.bursts().size(), 3u);
  for (std::size_t i = 0; i < a.bursts().size(); ++i) {
    const auto& ba = a.bursts()[i];
    const auto& bb = b.bursts()[i];
    EXPECT_DOUBLE_EQ(ba.at_s, (static_cast<double>(i) + 1.0) * 100.0);
    EXPECT_EQ(ba.domain, bb.domain);
    EXPECT_EQ(ba.peers, bb.peers);
    EXPECT_LT(ba.domain, a.num_domains());
    // The member list is exactly the peers hashed into the domain.
    for (const auto p : ba.peers) {
      EXPECT_EQ(a.failure_domain(p), ba.domain);
    }
    EXPECT_TRUE(std::is_sorted(ba.peers.begin(), ba.peers.end()));
  }
  // Domains partition the peer set.
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_LT(a.failure_domain(p), a.num_domains());
    EXPECT_EQ(a.failure_domain(p), b.failure_domain(p));
  }
}

TEST(FaultPlanAdversarial, ApplyBurstCrashesTheWholeDomainOnce) {
  fault::FaultSpec spec;
  spec.bursts = 1;
  spec.burst_width = 8;
  fault::FaultPlan plan(spec, 7, 64);
  ASSERT_EQ(plan.bursts().size(), 1u);
  const auto& burst = plan.bursts()[0];
  ASSERT_FALSE(burst.peers.empty());

  plan.apply_burst(burst);
  for (const auto p : burst.peers) EXPECT_TRUE(plan.crashed(p));
  EXPECT_EQ(plan.stats().burst_crashes, burst.peers.size());
  // Idempotent: replaying the burst crashes nobody twice.
  plan.apply_burst(burst);
  EXPECT_EQ(plan.stats().burst_crashes, burst.peers.size());

  // force_crash counts under the plain crash counter, once.
  const std::uint32_t victim = plan.crashed(0) ? 1 : 0;
  plan.force_crash(victim);
  plan.force_crash(victim);
  EXPECT_TRUE(plan.crashed(victim));
  EXPECT_EQ(plan.stats().crashes, 1u);

  // reset() clears crash state but keeps the schedule.
  plan.reset();
  EXPECT_FALSE(plan.crashed(victim));
  ASSERT_EQ(plan.bursts().size(), 1u);
  EXPECT_EQ(plan.bursts()[0].peers, burst.peers);
}

TEST(FaultPlanAdversarial, MailboxAckFatesArePureAndHonestPeersStore) {
  fault::FaultSpec spec;
  spec.byzantine = 0.4;
  fault::FaultPlan a(spec, 13, 128);
  fault::FaultPlan b(spec, 13, 128);
  std::size_t byzantine_peers = 0;
  std::size_t false_acks = 0;
  std::size_t duplicate_acks = 0;
  for (std::uint32_t peer = 0; peer < 128; ++peer) {
    EXPECT_EQ(a.byzantine(peer), b.byzantine(peer));
    byzantine_peers += a.byzantine(peer) ? 1 : 0;
    for (std::uint64_t msg = 1; msg <= 4; ++msg) {
      const auto fa = a.mailbox_ack(peer, msg, 5, 0);
      const auto fb = b.mailbox_ack(peer, msg, 5, 0);
      EXPECT_EQ(fa.acked, fb.acked);
      EXPECT_EQ(fa.stored, fb.stored);
      EXPECT_EQ(fa.duplicated, fb.duplicated);
      // Every acceptor acks (byzantine ones lie rather than stay silent).
      EXPECT_TRUE(fa.acked);
      if (!a.byzantine(peer)) {
        EXPECT_TRUE(fa.stored);
        EXPECT_FALSE(fa.duplicated);
        EXPECT_FALSE(a.withholds_replay(peer, msg));
      } else {
        false_acks += fa.stored ? 0 : 1;
        duplicate_acks += fa.duplicated ? 1 : 0;
        EXPECT_TRUE(a.withholds_replay(peer, msg));
      }
    }
  }
  EXPECT_GT(byzantine_peers, 0u);
  EXPECT_LT(byzantine_peers, 128u);
  EXPECT_GT(false_acks, 0u);
  EXPECT_GT(duplicate_acks, 0u);
  EXPECT_EQ(a.stats().false_acks, false_acks);
  EXPECT_EQ(a.stats().duplicate_acks, duplicate_acks);
}

// ---------------------------------------------------------------------------
// Adversarial soak: the ISSUE acceptance scenario end to end.
// ---------------------------------------------------------------------------

class AdversarialSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
    net_ = std::make_unique<net::NetworkModel>(g_.num_nodes(), 5);
    rebuild_system();
  }

  /// Fresh system state (overlay + CMA): the availability observer mutates
  /// per-peer CMA during a soak, and mailbox placement reads it — two
  /// same-seed soaks are only comparable from identical starting state.
  void rebuild_system() {
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 5,
                                                net_.get());
    sys_->build();
    ps_ = std::make_unique<overlay::PubSubSystem>(*sys_);
  }

  static fault::FaultSpec adversarial_spec() {
    fault::FaultSpec spec;
    spec.drop = 0.05;
    spec.duplicate = 0.01;
    spec.spike = 0.02;
    spec.spike_factor = 4.0;
    spec.stall = 0.01;
    spec.stall_s = 20.0;
    spec.byzantine = 0.15;
    spec.bursts = 2;
    spec.burst_width = 16;
    spec.burst_spacing_s = 450.0;
    return spec;
  }

  struct SoakResult {
    EngineStats stats;
    MailboxStats mailbox;
    fault::FaultPlan::Stats fault;
    /// Per-subscriber delivery over the explicit wanted sets captured at
    /// publish time, subscribers that themselves crashed excused.
    std::size_t wanted = 0;
    std::size_t delivered = 0;
    /// The (message, subscriber) pairs queued on the force-crashed
    /// publisher at its crash — the durability gap scenario.
    std::size_t at_risk = 0;
    std::size_t at_risk_delivered = 0;

    [[nodiscard]] double rate() const {
      return wanted == 0 ? 1.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(wanted);
    }
  };

  SoakResult run_soak(std::uint64_t seed, bool with_mailbox) {
    rebuild_system();
    const auto spec = adversarial_spec();
    fault::FaultPlan plan(spec, seed, g_.num_nodes());
    NotificationEngine engine(*ps_, *net_);
    engine.set_fault_plan(&plan);
    RetryPolicy policy;
    policy.enabled = true;
    policy.ack_timeout_s = 2.0;
    engine.set_retry_policy(policy);
    engine.set_multipath_planner(
        [this](PeerId b) { return plan_multipath(*sys_, g_, b); });
    engine.set_availability_observer([this](PeerId p, bool responsive) {
      sys_->observe_availability(p, responsive);
    });
    MailboxPolicy mpolicy;
    mpolicy.ack_timeout_s = 2.0;
    MailboxManager mailbox(engine.event_engine(), *sys_, *net_,
                           mpolicy, seed);
    if (with_mailbox) {
      mailbox.set_fault_plan(&plan);
      mailbox.set_availability_fn(
          [this](PeerId p) { return sys_->cma_of(p); });
      engine.set_mailbox(&mailbox);
    }

    sim::SessionChurn::Params churn_params;
    churn_params.session_median_s = 3600.0;
    churn_params.offline_median_s = 600.0;
    sim::SessionChurn churn(g_.num_nodes(), churn_params,
                            derive_seed(seed, 1));

    constexpr double kEpochS = 300.0;
    constexpr std::size_t kEpochs = 6;
    constexpr std::size_t kPublishersPerEpoch = 5;
    PeerId next_pub = 0;
    std::size_t next_burst = 0;
    std::size_t forced_crashes = 0;
    constexpr std::size_t kForcedCrashes = 3;
    SoakResult result;
    std::vector<MessageId> ids;
    std::unordered_map<MessageId, std::vector<PeerId>> wanted_sets;
    std::vector<std::pair<MessageId, PeerId>> at_risk_pairs;

    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      const double t0 = static_cast<double>(epoch) * kEpochS;
      churn.advance_to(t0);
      for (const auto p : churn.last_departures()) {
        sys_->set_peer_online(p, false);
      }
      for (const auto p : churn.last_arrivals()) {
        if (!plan.crashed(p)) {
          sys_->set_peer_online(p, true);
          engine.replay_missed(p, t0);
        }
      }
      // Correlated bursts due by this epoch: whole failure domains die at
      // once; the engine drops their local replay queues and the mailbox
      // runs its anti-entropy handoff.
      while (next_burst < plan.bursts().size() &&
             plan.bursts()[next_burst].at_s <= t0) {
        const auto& burst = plan.bursts()[next_burst];
        plan.apply_burst(burst);
        for (const auto p : burst.peers) {
          sys_->set_peer_online(p, false);
          engine.on_peer_crashed(p, t0);
        }
        ++next_burst;
      }
      for (const auto c : plan.crashed_peers()) {
        sys_->set_peer_online(c, false);
      }
      engine.invalidate_trees();
      for (std::size_t m = 0; m < kPublishersPerEpoch; ++m) {
        while (plan.crashed(next_pub % 40)) ++next_pub;
        const PeerId pub = next_pub % 40;
        ++next_pub;
        const auto id =
            engine.publish(pub, t0 + static_cast<double>(m));
        ids.push_back(id);
        auto& wset = wanted_sets[id];
        for (const PeerId s : ps_->subscribers_of(pub)) {
          if (sys_->peer_online(s)) wset.push_back(s);
        }
      }
      // Mid-soak, crash publishers still holding queued replays — the
      // exact durability gap the mailbox closes. Capture what was at
      // risk; one forced crash per epoch keeps it mid-dissemination.
      if (forced_crashes < kForcedCrashes && epoch >= 1) {
        engine.run_until(t0 + 150.0);
        for (const auto id : ids) {
          const auto& rec = engine.record(id);
          if (plan.crashed(rec.publisher)) continue;
          // Crashed subscribers sit in missed sets too but never return;
          // the durability scenario needs at least one that will.
          std::vector<PeerId> live_missed;
          for (const PeerId s : rec.missed) {
            if (!plan.crashed(s)) live_missed.push_back(s);
          }
          if (live_missed.empty()) continue;
          for (const PeerId s : live_missed) {
            at_risk_pairs.emplace_back(id, s);
          }
          plan.force_crash(rec.publisher);
          sys_->set_peer_online(rec.publisher, false);
          engine.on_peer_crashed(rec.publisher, t0 + 150.0);
          ++forced_crashes;
          break;
        }
      }
      engine.run_until(t0 + kEpochS);
    }
    engine.run_all();

    // Everyone still alive returns; both replay tiers drain.
    for (PeerId p = 0; p < g_.num_nodes(); ++p) {
      if (plan.crashed(p)) continue;
      sys_->set_peer_online(p, true);
      engine.replay_missed(p, engine.now_s());
    }

    EXPECT_GT(forced_crashes, 0u) << "no publisher held queued replays";
    for (const auto id : ids) {
      const auto& rec = engine.record(id);
      for (const PeerId s : wanted_sets.at(id)) {
        if (plan.crashed(s)) continue;  // the subscriber itself died
        ++result.wanted;
        if (rec.delivered_to.contains(s)) ++result.delivered;
      }
    }
    for (const auto& [id, s] : at_risk_pairs) {
      if (plan.crashed(s)) continue;
      ++result.at_risk;
      if (engine.record(id).delivered_to.contains(s)) {
        ++result.at_risk_delivered;
      }
    }
    result.stats = engine.stats();
    result.mailbox = mailbox.stats();
    result.fault = plan.stats();
    return result;
  }

  graph::SocialGraph g_;
  std::unique_ptr<net::NetworkModel> net_;
  std::unique_ptr<core::SelectSystem> sys_;
  std::unique_ptr<overlay::PubSubSystem> ps_;
};

TEST_F(AdversarialSoakTest, MailboxTierMeetsTheDurabilityBar) {
  // SEL_CHECK=full throughout: quorum, replay-dedup and durability
  // invariants are enforced on every transition of the soak.
  const check::ScopedLevel full(check::Level::kFull);
  const auto r = run_soak(42, /*with_mailbox=*/true);
  ASSERT_GT(r.wanted, 200u);
  // Acceptance bar: >= 99% of surviving wanted subscribers delivered
  // despite drops, bursts, byzantine acceptors and the publisher crash.
  EXPECT_GE(r.rate(), 0.99)
      << r.delivered << "/" << r.wanted
      << " missed=" << r.stats.missed
      << " dropped_crash=" << r.stats.replay_dropped_crash
      << " mailbox_replays=" << r.stats.mailbox_replays
      << " replay_lost=" << r.mailbox.replay_lost;
  // The adversary actually showed up...
  EXPECT_GT(r.fault.burst_crashes, 0u);
  EXPECT_GT(r.fault.false_acks, 0u);
  EXPECT_GT(r.stats.replay_dropped_crash, 0u);
  // ...and the mailbox tier did the recovering: quorum writes settled,
  // crash-orphaned messages came back from replicas.
  EXPECT_GT(r.mailbox.quorum_writes, 0u);
  EXPECT_GT(r.stats.mailbox_replays, 0u);
  // The messages queued on the force-crashed publisher — lost for good
  // without the mailbox — were (almost all; byzantine-majority replica
  // sets may sacrifice stragglers) delivered anyway.
  ASSERT_GT(r.at_risk, 0u);
  EXPECT_GE(r.at_risk_delivered * 10, r.at_risk * 9)
      << r.at_risk_delivered << "/" << r.at_risk;
}

TEST_F(AdversarialSoakTest, WithoutMailboxThePublisherCrashLosesMessages) {
  const auto r = run_soak(42, /*with_mailbox=*/false);
  // Same adversary, no durability tier: the force-crashed publisher's
  // queued messages are unrecoverable.
  EXPECT_GT(r.stats.replay_dropped_crash, 0u);
  EXPECT_EQ(r.stats.mailbox_replays, 0u);
  EXPECT_EQ(r.mailbox.replicated, 0u);
  ASSERT_GT(r.at_risk, 0u);
  EXPECT_LT(r.at_risk_delivered, r.at_risk)
      << "crash-dropped messages were delivered without any replica tier";
}

TEST_F(AdversarialSoakTest, SameSeedAdversarialSoaksAreBitIdentical) {
  const check::ScopedLevel full(check::Level::kFull);
  const auto a = run_soak(1234, /*with_mailbox=*/true);
  const auto b = run_soak(1234, /*with_mailbox=*/true);
  EXPECT_EQ(a.stats.messages_published, b.stats.messages_published);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.wanted, b.stats.wanted);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.failovers, b.stats.failovers);
  EXPECT_EQ(a.stats.replays, b.stats.replays);
  EXPECT_EQ(a.stats.missed, b.stats.missed);
  EXPECT_EQ(a.stats.replay_dropped_crash, b.stats.replay_dropped_crash);
  EXPECT_EQ(a.stats.mailbox_replays, b.stats.mailbox_replays);
  EXPECT_EQ(a.stats.delivery_latency_s.count(),
            b.stats.delivery_latency_s.count());
  EXPECT_EQ(a.stats.delivery_latency_s.mean(),
            b.stats.delivery_latency_s.mean());
  // The mailbox pipeline replays bit-identically too: stores, acks,
  // retries, handoffs and replays all land on the same draws.
  EXPECT_EQ(a.mailbox.replicated, b.mailbox.replicated);
  EXPECT_EQ(a.mailbox.store_attempts, b.mailbox.store_attempts);
  EXPECT_EQ(a.mailbox.acks, b.mailbox.acks);
  EXPECT_EQ(a.mailbox.duplicate_acks, b.mailbox.duplicate_acks);
  EXPECT_EQ(a.mailbox.retries, b.mailbox.retries);
  EXPECT_EQ(a.mailbox.quorum_writes, b.mailbox.quorum_writes);
  EXPECT_EQ(a.mailbox.quorum_degraded, b.mailbox.quorum_degraded);
  EXPECT_EQ(a.mailbox.handoffs, b.mailbox.handoffs);
  EXPECT_EQ(a.mailbox.replays, b.mailbox.replays);
  EXPECT_EQ(a.mailbox.replay_lost, b.mailbox.replay_lost);
  EXPECT_EQ(a.mailbox.superseded, b.mailbox.superseded);
  EXPECT_EQ(a.fault.burst_crashes, b.fault.burst_crashes);
  EXPECT_EQ(a.fault.false_acks, b.fault.false_acks);
  EXPECT_EQ(a.fault.duplicate_acks, b.fault.duplicate_acks);
  EXPECT_EQ(a.wanted, b.wanted);
  EXPECT_EQ(a.delivered, b.delivered);
}

}  // namespace
}  // namespace sel::pubsub
