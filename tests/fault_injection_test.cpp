// Chaos acceptance suite for the reliability layer (fault/ + engine retry
// path): deterministic fault plans, retry/backoff recovery under drops,
// crash-mid-dissemination failover, store-and-forward replay after churn,
// and bit-identical same-seed soak runs.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "graph/profiles.hpp"
#include "obs/provenance.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/multipath.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

TEST(FaultSpec, ParsesKnobList) {
  const auto spec = fault::FaultSpec::parse(
      "drop=0.05,dup=0.01,spike=0.02,spike_factor=5,stall=0.03,stall_s=12,"
      "crash=0.001");
  EXPECT_DOUBLE_EQ(spec.drop, 0.05);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.01);
  EXPECT_DOUBLE_EQ(spec.spike, 0.02);
  EXPECT_DOUBLE_EQ(spec.spike_factor, 5.0);
  EXPECT_DOUBLE_EQ(spec.stall, 0.03);
  EXPECT_DOUBLE_EQ(spec.stall_s, 12.0);
  EXPECT_DOUBLE_EQ(spec.crash, 0.001);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, EmptySpecIsInert) {
  const auto spec = fault::FaultSpec::parse("");
  EXPECT_FALSE(spec.any());
}

TEST(FaultSpec, RoundTripsThroughToString) {
  fault::FaultSpec spec;
  spec.drop = 0.125;
  spec.crash = 0.25;
  const auto back = fault::FaultSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(back.drop, spec.drop);
  EXPECT_DOUBLE_EQ(back.crash, spec.crash);
  EXPECT_DOUBLE_EQ(back.duplicate, 0.0);
}

TEST(FaultPlan, HopFatesArePureInSeedAndKey) {
  fault::FaultSpec spec;
  spec.drop = 0.3;
  spec.duplicate = 0.2;
  spec.spike = 0.2;
  fault::FaultPlan a(spec, 42, 16);
  fault::FaultPlan b(spec, 42, 16);
  std::size_t drops = 0;
  std::size_t dups = 0;
  std::size_t spikes = 0;
  for (std::uint64_t msg = 1; msg <= 40; ++msg) {
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      const auto fa = a.hop_fate(msg, 0, 1, attempt);
      const auto fb = b.hop_fate(msg, 0, 1, attempt);
      EXPECT_EQ(fa.dropped, fb.dropped);
      EXPECT_EQ(fa.duplicated, fb.duplicated);
      EXPECT_DOUBLE_EQ(fa.latency_factor, fb.latency_factor);
      drops += fa.dropped ? 1 : 0;
      dups += fa.duplicated ? 1 : 0;
      spikes += fa.latency_factor > 1.0 ? 1 : 0;
    }
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(spikes, 0u);
  EXPECT_EQ(a.stats().drops, drops);

  // A different seed draws a different fate sequence.
  fault::FaultPlan c(spec, 43, 16);
  std::size_t differs = 0;
  for (std::uint64_t msg = 1; msg <= 40; ++msg) {
    if (c.hop_fate(msg, 0, 1, 0).dropped != a.hop_fate(msg, 0, 1, 0).dropped) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(FaultPlan, CrashIsPermanentAndStallExpires) {
  fault::FaultSpec spec;
  spec.stall = 1.0;  // first arrival always stalls
  spec.stall_s = 10.0;
  fault::FaultPlan plan(spec, 7, 4);
  EXPECT_EQ(plan.on_receive(2, 1, 0.0), fault::ReceiveState::kStalled);
  EXPECT_TRUE(plan.stalled(2, 5.0));
  EXPECT_FALSE(plan.stalled(2, 10.0));

  fault::FaultSpec crash_spec;
  crash_spec.crash = 1.0;
  fault::FaultPlan crasher(crash_spec, 7, 4);
  EXPECT_EQ(crasher.on_receive(3, 1, 0.0), fault::ReceiveState::kCrashed);
  EXPECT_TRUE(crasher.crashed(3));
  EXPECT_EQ(crasher.on_receive(3, 2, 100.0), fault::ReceiveState::kCrashed);
  EXPECT_EQ(crasher.crashed_peers(), std::vector<std::uint32_t>{3});
}

// ---------------------------------------------------------------------------
// Engine-level chaos tests.
// ---------------------------------------------------------------------------

class FaultEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
    net_ = std::make_unique<net::NetworkModel>(g_.num_nodes(), 5);
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 5,
                                                net_.get());
    sys_->build();
    ps_ = std::make_unique<overlay::PubSubSystem>(*sys_);
  }

  void TearDown() override {
    // Soaks flip peers offline; leave the shared system fully online so a
    // later run_soak() starts from the same state (determinism contract).
    all_online();
  }

  void all_online() {
    for (PeerId p = 0; p < g_.num_nodes(); ++p) sys_->set_peer_online(p, true);
  }

  /// The ISSUE acceptance fault mix: 5% per-hop drop + crashes
  /// mid-dissemination, with the other classes at low rates for breadth.
  static fault::FaultSpec chaos_spec() {
    fault::FaultSpec spec;
    spec.drop = 0.05;
    spec.duplicate = 0.01;
    spec.spike = 0.02;
    spec.spike_factor = 4.0;
    spec.stall = 0.01;
    spec.stall_s = 20.0;
    spec.crash = 0.001;
    return spec;
  }

  struct SoakResult {
    EngineStats stats;
    std::size_t pending_replays_before_sweep = 0;
    std::size_t replayed_in_sweep = 0;
    std::size_t pending_replays_after_sweep = 0;
    /// Sum of per-message missed-subscriber sets after the sweep — zero
    /// means every missed subscriber was eventually replayed or delivered.
    std::size_t missed_left_after_sweep = 0;
    /// Replay-queue composition at soak end: entries whose subscriber is
    /// reachable (online) vs gone (offline or crashed). Reliable runs only
    /// queue unreachable peers; a growing online share would mean the
    /// recovery path abandons subscribers it could still serve.
    std::size_t online_missed = 0;
    std::size_t offline_missed = 0;
  };

  /// Chaos soak: epochs of SessionChurn + publishes under `spec`, replaying
  /// queued messages whenever a peer comes back, finishing with an
  /// everyone-returns replay sweep. Pure in `seed` + `reliable`.
  SoakResult run_soak(const fault::FaultSpec& spec, std::uint64_t seed,
                      bool reliable_on) {
    all_online();
    fault::FaultPlan plan(spec, seed, g_.num_nodes());
    NotificationEngine engine(*ps_, *net_);
    engine.set_fault_plan(&plan);
    RetryPolicy policy;  // enabled = false: the control configuration
    // Notification payloads are tiny; a tight ack timeout keeps the whole
    // retry + failover ladder well inside one churn epoch, so recovery
    // races peer departures instead of losing to them.
    policy.ack_timeout_s = 2.0;
    if (reliable_on) {
      policy.enabled = true;
      engine.set_retry_policy(policy);
      engine.set_multipath_planner([this](PeerId b) {
        return plan_multipath(*sys_, g_, b);
      });
      engine.set_availability_observer([this](PeerId p, bool responsive) {
        sys_->observe_availability(p, responsive);
      });
    } else {
      engine.set_retry_policy(policy);
    }

    sim::SessionChurn::Params churn_params;
    churn_params.session_median_s = 3600.0;
    churn_params.offline_median_s = 600.0;
    sim::SessionChurn churn(g_.num_nodes(), churn_params,
                            derive_seed(seed, 1));
    // Epochs are long relative to the worst recovery chain (primary ladder
    // + failover ladder + detour, ~150 s with 2 s ack timeouts), so batched
    // churn application cannot reap flights that would have finished —
    // matching reality, where message recovery (seconds) is much faster
    // than session dynamics (hours).
    constexpr double kEpochS = 300.0;
    constexpr std::size_t kEpochs = 6;
    constexpr std::size_t kPublishersPerEpoch = 5;
    PeerId next_pub = 0;
    std::vector<MessageId> ids;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      const double t0 = static_cast<double>(epoch) * kEpochS;
      churn.advance_to(t0);
      for (const auto p : churn.last_departures()) {
        sys_->set_peer_online(p, false);
      }
      for (const auto p : churn.last_arrivals()) {
        if (!plan.crashed(p)) {
          sys_->set_peer_online(p, true);
          engine.replay_missed(p, t0);
        }
      }
      // Crashed peers never come back; a deployment's failure detector
      // marks them offline so later trees route around them.
      for (const auto c : plan.crashed_peers()) {
        sys_->set_peer_online(c, false);
      }
      engine.invalidate_trees();
      for (std::size_t m = 0; m < kPublishersPerEpoch; ++m) {
        ids.push_back(engine.publish(next_pub % 40, t0 + static_cast<double>(m)));
        ++next_pub;
      }
      engine.run_until(t0 + kEpochS);
    }
    engine.run_all();

    SoakResult result;
    result.pending_replays_before_sweep = engine.pending_replays();
    for (const auto id : ids) {
      for (const PeerId s : engine.record(id).missed) {
        if (sys_->peer_online(s)) {
          ++result.online_missed;
        } else {
          ++result.offline_missed;
        }
      }
    }
    // Everyone (churned-offline and crashed alike) returns: every queued
    // message must be replayed exactly once.
    for (PeerId p = 0; p < g_.num_nodes(); ++p) {
      sys_->set_peer_online(p, true);
      result.replayed_in_sweep += engine.replay_missed(p, engine.now_s());
    }
    result.pending_replays_after_sweep = engine.pending_replays();
    for (const auto id : ids) {
      result.missed_left_after_sweep += engine.record(id).missed.size();
    }
    result.stats = engine.stats();
    return result;
  }

  graph::SocialGraph g_;
  std::unique_ptr<net::NetworkModel> net_;
  std::unique_ptr<core::SelectSystem> sys_;
  std::unique_ptr<overlay::PubSubSystem> ps_;
};

TEST_F(FaultEngineTest, ReliableSoakMeetsDeliveryBarAndReplaysEverything) {
  const auto r = run_soak(chaos_spec(), 42, /*reliable_on=*/true);
  ASSERT_GT(r.stats.wanted, 200u);
  // Acceptance bar: >= 99% of wanted subscribers delivered in-flight
  // despite 5% per-hop drops and mid-dissemination crashes.
  EXPECT_GE(r.stats.delivery_rate(), 0.99)
      << r.stats.deliveries << "/" << r.stats.wanted
      << " retries=" << r.stats.retries
      << " exhausted=" << r.stats.retry_exhausted
      << " failovers=" << r.stats.failovers
      << " missed=" << r.stats.missed
      << " replays=" << r.stats.replays
      << " pending=" << r.pending_replays_before_sweep;
  EXPECT_GT(r.stats.retries, 0u);
  // Every subscriber still awaiting replay at soak end is unreachable
  // (offline or crashed) — the recovery path never abandons a peer it
  // could still deliver to.
  EXPECT_EQ(r.online_missed, 0u);
  // Store-and-forward: something was queued while peers were away, and the
  // final everyone-returns sweep drained the queue completely. (Sweep
  // replays can undercount the queue when a late duplicate delivered a
  // queued message first — that is the dedup-skip path, not a loss.)
  EXPECT_GT(r.pending_replays_before_sweep, 0u);
  EXPECT_LE(r.replayed_in_sweep, r.pending_replays_before_sweep);
  EXPECT_EQ(r.pending_replays_after_sweep, 0u);
  EXPECT_EQ(r.missed_left_after_sweep, 0u);
  EXPECT_GE(r.stats.replays, r.replayed_in_sweep);
}

TEST_F(FaultEngineTest, ControlRunWithoutRetriesLosesDeliveries) {
  const auto reliable = run_soak(chaos_spec(), 42, /*reliable_on=*/true);
  const auto control = run_soak(chaos_spec(), 42, /*reliable_on=*/false);
  // Same seed, same fault draws per (msg, edge, attempt): disabling the
  // recovery machinery measurably loses deliveries.
  EXPECT_LT(control.stats.deliveries, reliable.stats.deliveries);
  EXPECT_LT(control.stats.delivery_rate(), 0.99);
  EXPECT_EQ(control.stats.retries, 0u);
  EXPECT_EQ(control.stats.failovers, 0u);
  EXPECT_EQ(control.stats.replays, 0u);
}

TEST_F(FaultEngineTest, SameSeedSoaksAreBitIdentical) {
  const auto a = run_soak(chaos_spec(), 1234, /*reliable_on=*/true);
  const auto b = run_soak(chaos_spec(), 1234, /*reliable_on=*/true);
  EXPECT_EQ(a.stats.messages_published, b.stats.messages_published);
  EXPECT_EQ(a.stats.wanted, b.stats.wanted);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.retry_exhausted, b.stats.retry_exhausted);
  EXPECT_EQ(a.stats.failovers, b.stats.failovers);
  EXPECT_EQ(a.stats.replays, b.stats.replays);
  EXPECT_EQ(a.stats.missed, b.stats.missed);
  EXPECT_EQ(a.stats.duplicates_suppressed, b.stats.duplicates_suppressed);
  EXPECT_EQ(a.stats.relay_forwards, b.stats.relay_forwards);
  // Latency aggregates must match to the last bit, not approximately.
  EXPECT_EQ(a.stats.delivery_latency_s.count(),
            b.stats.delivery_latency_s.count());
  EXPECT_EQ(a.stats.delivery_latency_s.mean(),
            b.stats.delivery_latency_s.mean());
  EXPECT_EQ(a.stats.delivery_latency_s.max(),
            b.stats.delivery_latency_s.max());
  EXPECT_EQ(a.replayed_in_sweep, b.replayed_in_sweep);
}

TEST_F(FaultEngineTest, CrashedRelaySubtreeFailsOverToBackupRoutes) {
  // Deterministically crash one busy relay mid-dissemination by stalling
  // nothing and crashing with certainty on its first receive: every
  // subscriber routed under it must still arrive via backup paths or land
  // in the replay queue — none silently vanish.
  fault::FaultSpec spec;
  spec.crash = 0.02;  // heavy crash pressure to force failovers
  fault::FaultPlan plan(spec, 9, g_.num_nodes());
  NotificationEngine engine(*ps_, *net_);
  engine.set_fault_plan(&plan);
  RetryPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 2;  // give up fast so failover actually triggers
  engine.set_retry_policy(policy);
  engine.set_multipath_planner([this](PeerId b) {
    return plan_multipath(*sys_, g_, b);
  });
  std::vector<MessageId> ids;
  for (PeerId p = 0; p < 30; ++p) {
    ids.push_back(engine.publish(p, static_cast<double>(p)));
  }
  engine.run_all();
  EXPECT_GT(engine.stats().failovers, 0u);
  // Conservation: every wanted subscriber is delivered, queued for replay,
  // or was crashed by the plan (gone for good).
  for (const auto id : ids) {
    const auto& rec = engine.record(id);
    std::size_t crashed_misses = 0;
    for (const PeerId s : rec.missed) {
      if (plan.crashed(s)) ++crashed_misses;
    }
    EXPECT_GE(rec.delivered + rec.missed.size(), rec.wanted)
        << "message " << id << " lost subscribers without queuing them";
    (void)crashed_misses;
  }
}

TEST_F(FaultEngineTest, OfflineSubscribersAreReplayedOnReturn) {
  // No faults at all — pure store-and-forward: subscribers offline at
  // publish time get the message on return, exactly once, as replays
  // (never double-counted as deliveries).
  NotificationEngine engine(*ps_, *net_);
  RetryPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 2;
  engine.set_retry_policy(policy);
  const auto subs = ps_->subscribers_of(0);
  ASSERT_GE(subs.size(), 3u);
  std::vector<PeerId> away(subs.begin(), subs.end());
  std::sort(away.begin(), away.end());
  away.resize(3);
  for (const PeerId s : away) sys_->set_peer_online(s, false);
  engine.invalidate_trees();
  const auto id = engine.publish(0, 0.0);
  engine.run_all();
  const auto& rec = engine.record(id);
  EXPECT_EQ(rec.delivered, rec.wanted);
  EXPECT_EQ(engine.pending_replays(), 3u);
  for (const PeerId s : away) {
    sys_->set_peer_online(s, true);
    EXPECT_EQ(engine.replay_missed(s, engine.now_s()), 1u);
    EXPECT_TRUE(rec.delivered_to.contains(s));
    // Replaying again must be a no-op, not a duplicate delivery.
    EXPECT_EQ(engine.replay_missed(s, engine.now_s()), 0u);
  }
  EXPECT_EQ(rec.replays, 3u);
  EXPECT_EQ(rec.delivered, rec.wanted);  // replays are not deliveries
  EXPECT_EQ(engine.pending_replays(), 0u);
  EXPECT_TRUE(rec.missed.empty());
}

TEST_F(FaultEngineTest, RetryHopsAreRecordedInProvenance) {
  auto& tracer = obs::ProvenanceTracer::global();
  tracer.reset();
  tracer.set_sample_every(1);  // sample every publish
  fault::FaultSpec spec;
  spec.drop = 0.2;  // plenty of retries
  fault::FaultPlan plan(spec, 3, g_.num_nodes());
  NotificationEngine engine(*ps_, *net_);
  engine.set_fault_plan(&plan);
  RetryPolicy policy;
  policy.enabled = true;
  engine.set_retry_policy(policy);
  for (PeerId p = 0; p < 10; ++p) engine.publish(p, 0.0);
  engine.run_all();
  const auto snap = tracer.snapshot();
  tracer.set_sample_every(0);  // restore env-driven sampling
  tracer.reset();
  ASSERT_GT(engine.stats().retries, 0u);
  const bool has_retry_hop =
      std::any_of(snap.hops.begin(), snap.hops.end(),
                  [](const obs::HopRecord& h) { return h.attempt > 0; });
  EXPECT_TRUE(has_retry_hop);
}

TEST_F(FaultEngineTest, NonReliableEngineIsUnchangedByReliabilityCode) {
  // Without a fault plan or retry policy the engine must behave exactly as
  // the perfect-transfer implementation: full delivery, no reliability
  // counters moving.
  NotificationEngine engine(*ps_, *net_);
  ASSERT_FALSE(engine.reliable());
  const auto id = engine.publish(0, 0.0);
  engine.run_all();
  const auto& rec = engine.record(id);
  EXPECT_EQ(rec.delivered, rec.wanted);
  EXPECT_EQ(engine.stats().retries, 0u);
  EXPECT_EQ(engine.stats().failovers, 0u);
  EXPECT_EQ(engine.stats().missed, 0u);
  EXPECT_EQ(engine.pending_replays(), 0u);
}

}  // namespace
}  // namespace sel::pubsub
