#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "graph/profiles.hpp"

namespace sel::graph {
namespace {

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  const std::size_t n = 2000;
  const double p = 0.01;
  const SocialGraph g = erdos_renyi(n, p, 1);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.1);
}

TEST(ErdosRenyi, ZeroProbabilityGivesNoEdges) {
  EXPECT_EQ(erdos_renyi(100, 0.0, 1).num_edges(), 0u);
}

TEST(ErdosRenyi, FullProbabilityGivesCompleteGraph) {
  const SocialGraph g = erdos_renyi(20, 1.0, 1);
  EXPECT_EQ(g.num_edges(), 20u * 19 / 2);
}

TEST(ErdosRenyi, Deterministic) {
  const SocialGraph a = erdos_renyi(500, 0.02, 7);
  const SocialGraph b = erdos_renyi(500, 0.02, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < 500; ++u) EXPECT_EQ(a.degree(u), b.degree(u));
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  const SocialGraph a = erdos_renyi(500, 0.02, 1);
  const SocialGraph b = erdos_renyi(500, 0.02, 2);
  bool any_diff = false;
  for (NodeId u = 0; u < 500 && !any_diff; ++u) {
    any_diff = a.degree(u) != b.degree(u);
  }
  EXPECT_TRUE(any_diff);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  const SocialGraph g = watts_strogatz(100, 4, 0.0, 1);
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 99));
  EXPECT_TRUE(g.has_edge(0, 98));
  EXPECT_FALSE(g.has_edge(0, 50));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  const SocialGraph g = watts_strogatz(200, 6, 0.3, 5);
  EXPECT_EQ(g.num_edges(), 200u * 3);
}

TEST(WattsStrogatz, HighBetaLowersClustering) {
  const double c_low = clustering_coefficient(watts_strogatz(500, 8, 0.0, 3),
                                              500, 1);
  const double c_high = clustering_coefficient(watts_strogatz(500, 8, 0.9, 3),
                                               500, 1);
  EXPECT_GT(c_low, 0.5);
  EXPECT_LT(c_high, c_low / 2.0);
}

TEST(BarabasiAlbert, NodeAndEdgeCounts) {
  const std::size_t n = 1000;
  const std::size_t m = 3;
  const SocialGraph g = barabasi_albert(n, m, 11);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique of m+1 nodes plus m edges per remaining node.
  const std::size_t expected = m * (m + 1) / 2 + (n - m - 1) * m;
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(BarabasiAlbert, MinimumDegreeIsM) {
  const SocialGraph g = barabasi_albert(500, 4, 13);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_GE(g.degree(u), 4u);
}

TEST(BarabasiAlbert, ProducesHubs) {
  const SocialGraph g = barabasi_albert(2000, 3, 17);
  EXPECT_GT(g.max_degree(), 50u);  // heavy tail
}

TEST(BarabasiAlbert, IsConnected) {
  const SocialGraph g = barabasi_albert(1000, 2, 19);
  EXPECT_EQ(connected_components(g), 1u);
}

TEST(HolmeKim, TriadClosureRaisesClustering) {
  const double c_ba =
      clustering_coefficient(holme_kim(1500, 4, 0.0, 23), 600, 1);
  const double c_hk =
      clustering_coefficient(holme_kim(1500, 4, 0.9, 23), 600, 1);
  EXPECT_GT(c_hk, c_ba * 2.0);
  EXPECT_GT(c_hk, 0.1);
}

TEST(HolmeKim, Deterministic) {
  const SocialGraph a = holme_kim(400, 3, 0.5, 29);
  const SocialGraph b = holme_kim(400, 3, 0.5, 29);
  for (NodeId u = 0; u < 400; ++u) EXPECT_EQ(a.degree(u), b.degree(u));
}

TEST(HolmeKim, PowerlawExponentInRealisticRange) {
  const SocialGraph g = holme_kim(4000, 5, 0.5, 31);
  const double alpha = powerlaw_alpha(g, 6);
  EXPECT_GT(alpha, 1.8);
  EXPECT_LT(alpha, 4.5);
}

// Table II profiles: generated structure matches the published statistics.
class ProfileSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweep, AverageDegreeTracksTableII) {
  const auto& profile = profile_by_name(GetParam());
  const SocialGraph g = make_dataset_graph(profile, 2500, 3);
  // Generated average degree ~ 2m; it should be within 40% of the paper's
  // value (the generator trades exactness for structure).
  EXPECT_NEAR(g.average_degree(), profile.paper_avg_degree,
              profile.paper_avg_degree * 0.4);
}

TEST_P(ProfileSweep, GraphIsUsable) {
  const auto& profile = profile_by_name(GetParam());
  const SocialGraph g = make_dataset_graph(profile, 600, 5);
  EXPECT_EQ(g.num_nodes(), 600u);
  EXPECT_EQ(connected_components(g), 1u);
  EXPECT_GT(clustering_coefficient(g, 300, 1), 0.02);
}

INSTANTIATE_TEST_SUITE_P(TableII, ProfileSweep,
                         ::testing::Values("facebook", "twitter", "slashdot",
                                           "gplus"));

TEST(Profiles, AllProfilesHaveFourEntries) {
  EXPECT_EQ(all_profiles().size(), 4u);
}

TEST(Profiles, TinyGraphClampsM) {
  const auto& gplus = profile_by_name("gplus");  // gen_m = 63
  const SocialGraph g = make_dataset_graph(gplus, 40, 1);
  EXPECT_EQ(g.num_nodes(), 40u);  // would abort without clamping
}

}  // namespace
}  // namespace sel::graph
