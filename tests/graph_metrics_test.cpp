#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace sel::graph {
namespace {

SocialGraph clique(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

TEST(DegreeSequence, MatchesDegrees) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const SocialGraph g = b.build();
  const auto seq = degree_sequence(g);
  EXPECT_EQ(seq, (std::vector<std::size_t>{2, 1, 1}));
}

TEST(DegreeDistribution, CountsSumToN) {
  const SocialGraph g = erdos_renyi(300, 0.02, 3);
  const auto dist = degree_distribution(g);
  EXPECT_EQ(std::accumulate(dist.begin(), dist.end(), std::size_t{0}),
            g.num_nodes());
}

TEST(DegreeDistribution, StarGraph) {
  GraphBuilder b(5);
  for (NodeId u = 1; u < 5; ++u) b.add_edge(0, u);
  const auto dist = degree_distribution(b.build());
  ASSERT_EQ(dist.size(), 5u);  // max degree 4
  EXPECT_EQ(dist[1], 4u);
  EXPECT_EQ(dist[4], 1u);
}

TEST(Clustering, CliqueIsOne) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(clique(6), 100, 1), 1.0);
}

TEST(Clustering, TreeIsZero) {
  GraphBuilder b(7);
  for (NodeId u = 1; u < 7; ++u) b.add_edge(u / 2, u);  // binary tree
  EXPECT_DOUBLE_EQ(clustering_coefficient(b.build(), 100, 1), 0.0);
}

TEST(Clustering, SampledEstimateNearExact) {
  const SocialGraph g = holme_kim(800, 4, 0.7, 7);
  const double exact = clustering_coefficient(g, g.num_nodes(), 1);
  const double sampled = clustering_coefficient(g, 400, 99);
  EXPECT_NEAR(sampled, exact, 0.08);
}

TEST(ConnectedComponents, CountsDisjointPieces) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5, 6 isolated
  const SocialGraph g = b.build();
  EXPECT_EQ(connected_components(g), 4u);
  EXPECT_EQ(largest_component_size(g), 3u);
}

TEST(ConnectedComponents, EmptyGraph) {
  const SocialGraph g = GraphBuilder(0).build();
  EXPECT_EQ(connected_components(g), 0u);
  EXPECT_EQ(largest_component_size(g), 0u);
}

TEST(ConnectedComponents, SingleComponent) {
  EXPECT_EQ(connected_components(clique(10)), 1u);
  EXPECT_EQ(largest_component_size(clique(10)), 10u);
}

TEST(PowerlawAlpha, ReturnsZeroWithTooFewNodes) {
  EXPECT_DOUBLE_EQ(powerlaw_alpha(clique(5), 100), 0.0);
}

TEST(PowerlawAlpha, BaGraphInExpectedRange) {
  const SocialGraph g = barabasi_albert(5000, 4, 9);
  const double alpha = powerlaw_alpha(g, 5);
  // BA graphs have alpha ~ 3.
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 4.0);
}

}  // namespace
}  // namespace sel::graph
