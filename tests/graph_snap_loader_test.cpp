#include "graph/snap_loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace sel::graph {
namespace {

TEST(SnapParser, ParsesSimpleEdgeList) {
  const auto result = parse_snap_edge_list("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_nodes(), 3u);
  EXPECT_EQ(result->graph.num_edges(), 3u);
  EXPECT_EQ(result->lines_parsed, 3u);
  EXPECT_EQ(result->lines_skipped, 0u);
}

TEST(SnapParser, SkipsComments) {
  const auto result = parse_snap_edge_list(
      "# SNAP header\n# Nodes: 2 Edges: 1\n10 20\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_nodes(), 2u);
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(SnapParser, HandlesTabsAndSpaces) {
  const auto result = parse_snap_edge_list("0\t1\n2   3\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(SnapParser, RemapsSparseIds) {
  const auto result = parse_snap_edge_list("1000000 5\n5 99\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_nodes(), 3u);  // dense remap
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(SnapParser, SymmetrizesDirectedInput) {
  // Both directions of the same pair collapse to one undirected edge.
  const auto result = parse_snap_edge_list("0 1\n1 0\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(SnapParser, SkipsMalformedLines) {
  const auto result = parse_snap_edge_list("0 1\ngarbage\n2 3\nx y\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_edges(), 2u);
  EXPECT_EQ(result->lines_skipped, 2u);
}

TEST(SnapParser, DropsSelfLoops) {
  const auto result = parse_snap_edge_list("7 7\n7 8\n");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(SnapParser, EmptyInputReturnsNullopt) {
  EXPECT_FALSE(parse_snap_edge_list("").has_value());
  EXPECT_FALSE(parse_snap_edge_list("# only comments\n").has_value());
  EXPECT_FALSE(parse_snap_edge_list("5 5\n").has_value());  // only self-loop
}

TEST(SnapParser, NoTrailingNewline) {
  const auto result = parse_snap_edge_list("0 1\n2 3");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(SnapLoader, RoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "/select_snap_test.txt";
  {
    std::ofstream out(path);
    out << "# test graph\n0 1\n1 2\n3 0\n";
  }
  const auto result = load_snap_edge_list(path);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_nodes(), 4u);
  EXPECT_EQ(result->graph.num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(SnapLoader, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_snap_edge_list("/no/such/file.txt").has_value());
}

}  // namespace
}  // namespace sel::graph
