#include "graph/social_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sel::graph {
namespace {

SocialGraph triangle_plus_tail() {
  // 0-1, 1-2, 0-2 (triangle), 2-3 (tail)
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0);
  const SocialGraph g = b.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, NodesWithoutEdges) {
  GraphBuilder b(5);
  const SocialGraph g = b.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.degree(u), 0u);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  b.add_edge(0, 1);  // duplicate
  const SocialGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const SocialGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(SocialGraph, DegreesAndNeighbors) {
  const SocialGraph g = triangle_plus_tail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(SocialGraph, NeighborsAreSorted) {
  const SocialGraph g = triangle_plus_tail();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(SocialGraph, HasEdgeSymmetric) {
  const SocialGraph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(SocialGraph, CommonNeighbors) {
  const SocialGraph g = triangle_plus_tail();
  // N(0) = {1,2}, N(1) = {0,2} -> common {2}
  EXPECT_EQ(g.common_neighbors(0, 1), 1u);
  // N(0) = {1,2}, N(3) = {2} -> common {2}
  EXPECT_EQ(g.common_neighbors(0, 3), 1u);
  // N(1) = {0,2}, N(2) = {0,1,3} -> common {0}
  EXPECT_EQ(g.common_neighbors(1, 2), 1u);
}

TEST(SocialGraph, SocialStrengthNormalizedByOwnDegree) {
  const SocialGraph g = triangle_plus_tail();
  // s(0,1) = |{2}| / deg(0)=2 = 0.5
  EXPECT_DOUBLE_EQ(g.social_strength(0, 1), 0.5);
  // s(1,0) = |{2}| / deg(1)=2 = 0.5
  EXPECT_DOUBLE_EQ(g.social_strength(1, 0), 0.5);
  // s(3,0) = |{2}| / deg(3)=1 = 1.0 — asymmetry
  EXPECT_DOUBLE_EQ(g.social_strength(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.social_strength(0, 3), 0.5);
}

TEST(SocialGraph, SocialStrengthOfIsolatedNodeIsZero) {
  GraphBuilder b(3);
  b.add_edge(1, 2);
  const SocialGraph g = b.build();
  EXPECT_DOUBLE_EQ(g.social_strength(0, 1), 0.0);
}

TEST(SocialGraph, AverageDegree) {
  const SocialGraph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 4 / 4);
}

TEST(SocialGraph, MaxDegree) {
  const SocialGraph g = triangle_plus_tail();
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(SocialGraph, EmptyGraphAverageDegreeZero) {
  const SocialGraph g = GraphBuilder(0).build();
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphBuilder, LargeStarGraph) {
  const std::size_t n = 1001;
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) b.add_edge(0, u);
  const SocialGraph g = b.build();
  EXPECT_EQ(g.degree(0), n - 1);
  EXPECT_EQ(g.num_edges(), n - 1);
  for (NodeId u = 1; u < n; ++u) {
    EXPECT_EQ(g.degree(u), 1u);
    EXPECT_TRUE(g.has_edge(u, 0));
  }
}

}  // namespace
}  // namespace sel::graph
