#include "graph/tie_strength.hpp"

#include <gtest/gtest.h>

#include <string>

#include "graph/generators.hpp"
#include "graph/profiles.hpp"
#include "graph/snap_loader.hpp"

namespace sel::graph {
namespace {

/// Every (u, v) pair — edges, non-edges, u == v — must agree with the naive
/// CSR merge, with the cache cold and warm.
void expect_full_equivalence(const SocialGraph& g) {
  TieStrengthIndex tie(g);
  for (int pass = 0; pass < 2; ++pass) {  // pass 1 answers from warm slots
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(tie.common_neighbors(u, v), g.common_neighbors(u, v))
            << "pass=" << pass << " u=" << u << " v=" << v;
        ASSERT_DOUBLE_EQ(tie.social_strength(u, v), g.social_strength(u, v))
            << "pass=" << pass << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(TieStrengthIndex, MatchesNaiveOnGeneratedGraph) {
  expect_full_equivalence(
      make_dataset_graph(profile_by_name("facebook"), 120, 7));
}

TEST(TieStrengthIndex, MatchesNaiveOnHolmeKim) {
  expect_full_equivalence(holme_kim(80, 3, 0.4, 11));
}

TEST(TieStrengthIndex, MatchesNaiveOnSnapEdgeList) {
  // A small SNAP-style fixture: a triangle fan plus a pendant chain, with
  // comments, duplicate edges and reversed duplicates like real dumps have.
  const std::string text =
      "# SNAP-style fixture\n"
      "0\t1\n0\t2\n0\t3\n1\t2\n2\t3\n3\t4\n4\t5\n"
      "1\t0\n"  // reversed duplicate
      "2\t0\n"
      "5\t6\n4\t6\n0\t4\n";
  const auto loaded = parse_snap_edge_list(text);
  ASSERT_TRUE(loaded.has_value());
  expect_full_equivalence(loaded->graph);
}

TEST(TieStrengthIndex, SelfPairIsDegreeWithoutMerge) {
  const auto g = holme_kim(30, 2, 0.2, 3);
  TieStrengthIndex tie(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(tie.common_neighbors(u, u), g.degree(u));
  }
  EXPECT_EQ(tie.stats().misses, 0u);
  EXPECT_EQ(tie.stats().uncacheable, g.num_nodes());
}

TEST(TieStrengthIndex, EdgePairsHitOnRepeatNonEdgesDoNot) {
  const auto g = holme_kim(60, 3, 0.3, 5);
  TieStrengthIndex tie(g);
  const NodeId u = 0;
  const NodeId friend_v = g.neighbors(u)[0];
  NodeId stranger = kInvalidNode;
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (w != u && !g.has_edge(u, w)) {
      stranger = w;
      break;
    }
  }
  ASSERT_NE(stranger, kInvalidNode);

  (void)tie.common_neighbors(u, friend_v);
  EXPECT_EQ(tie.stats().misses, 1u);
  (void)tie.common_neighbors(u, friend_v);
  (void)tie.common_neighbors(friend_v, u);  // symmetric: same slot
  EXPECT_EQ(tie.stats().hits, 2u);
  EXPECT_EQ(tie.stats().merges(), 1u);

  (void)tie.common_neighbors(u, stranger);
  (void)tie.common_neighbors(u, stranger);
  EXPECT_EQ(tie.stats().uncacheable, 2u);  // non-edges merge every time
  EXPECT_EQ(tie.stats().merges(), 3u);
  EXPECT_EQ(tie.stats().queries(), 5u);
}

TEST(TieStrengthIndex, InvalidateDropsEverySlot) {
  const auto g = holme_kim(40, 3, 0.3, 9);
  TieStrengthIndex tie(g);
  const NodeId u = 1;
  const NodeId v = g.neighbors(u)[0];
  (void)tie.common_neighbors(u, v);
  tie.invalidate();
  (void)tie.common_neighbors(u, v);
  EXPECT_EQ(tie.stats().misses, 2u);  // re-merged after the epoch bump
  EXPECT_EQ(tie.stats().hits, 0u);
  EXPECT_EQ(tie.common_neighbors(u, v), g.common_neighbors(u, v));
  EXPECT_EQ(tie.stats().hits, 1u);
}

TEST(TieStrengthIndex, InvalidateNodeDropsItsPairsButNotOthers) {
  const auto g = holme_kim(60, 3, 0.3, 13);
  TieStrengthIndex tie(g);
  const NodeId u = 0;
  const NodeId v = g.neighbors(u)[0];
  // A far pair that shares no row with u: neither endpoint is u or one of
  // u's neighbours (invalidate_node clears exactly those rows).
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  for (NodeId x = 0; x < g.num_nodes() && a == kInvalidNode; ++x) {
    if (x == u || g.has_edge(u, x)) continue;
    for (const NodeId y : g.neighbors(x)) {
      if (y > x && y != u && !g.has_edge(u, y)) {
        a = x;
        b = y;
        break;
      }
    }
  }
  ASSERT_NE(a, kInvalidNode);

  (void)tie.common_neighbors(u, v);
  (void)tie.common_neighbors(a, b);
  EXPECT_EQ(tie.stats().misses, 2u);
  tie.invalidate_node(u);
  (void)tie.common_neighbors(u, v);  // dropped: re-merges
  (void)tie.common_neighbors(a, b);  // untouched: still warm
  EXPECT_EQ(tie.stats().misses, 3u);
  EXPECT_EQ(tie.stats().hits, 1u);
}

}  // namespace
}  // namespace sel::graph
