// End-to-end integration: every system builds on every dataset profile and
// the paper's headline orderings hold at test scale.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

namespace sel {
namespace {

using overlay::PeerId;

std::vector<PeerId> sample_publishers(std::size_t n, std::size_t count) {
  std::vector<PeerId> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<PeerId>(i * 37 % n));
  }
  return out;
}

TEST(Integration, AllSystemsBuildAndRouteOnFacebookProfile) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 500, 42);
  for (const auto name : baselines::all_system_names()) {
    auto sys = baselines::make_system(name, g, {.seed = 42});
    sys->build();
    const auto hops = pubsub::measure_hops(*sys, 150, 42);
    EXPECT_GT(hops.success_rate(), 0.97) << name;
    const auto relays = pubsub::measure_relays(*sys, sample_publishers(500, 10));
    EXPECT_GT(relays.coverage.mean(), 0.9) << name;
  }
}

TEST(Integration, SelectBeatsSymphonyOnHops) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 600, 7);
  auto select = baselines::make_system("select", g, {.seed = 7});
  auto symphony = baselines::make_system("symphony", g, {.seed = 7});
  select->build();
  symphony->build();
  const double select_hops = pubsub::measure_hops(*select, 300, 7).hops.mean();
  const double symphony_hops =
      pubsub::measure_hops(*symphony, 300, 7).hops.mean();
  EXPECT_LT(select_hops, symphony_hops);
}

TEST(Integration, SelectHasFewestRelaysAmongRingSystems) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 600, 9);
  const auto publishers = sample_publishers(600, 15);
  auto select = baselines::make_system("select", g, {.seed = 9});
  select->build();
  const double select_relays =
      pubsub::measure_relays(*select, publishers).relays_per_path.mean();
  for (const auto name : {"symphony", "bayeux", "vitis"}) {
    auto sys = baselines::make_system(name, g, {.seed = 9});
    sys->build();
    const double relays =
        pubsub::measure_relays(*sys, publishers).relays_per_path.mean();
    EXPECT_LT(select_relays, relays) << name;
  }
}

TEST(Integration, SelectRelayTrafficIsMinimal) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("slashdot"), 500, 11);
  const auto publishers = sample_publishers(500, 15);
  auto select = baselines::make_system("select", g, {.seed = 11});
  select->build();
  const auto load = pubsub::measure_load(*select, publishers);
  // Slashdot is the sparsest profile (avg degree ~12), so the subscriber
  // mesh covers least and a bit more relay traffic remains.
  EXPECT_LT(load.relay_forward_share, 0.20);
  auto bayeux = baselines::make_system("bayeux", g, {.seed = 11});
  bayeux->build();
  const auto bayeux_load = pubsub::measure_load(*bayeux, publishers);
  EXPECT_GT(bayeux_load.relay_forward_share, load.relay_forward_share);
}

TEST(Integration, SelectDisseminationLatencyBeatsRandomOverlay) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 400, 13);
  net::NetworkModel net(g.num_nodes(), 13);
  const auto publishers = sample_publishers(400, 10);
  auto select = baselines::make_system("select", g, {.seed = 13, .net = &net});
  select->build();
  auto random = baselines::make_system("random", g, {.seed = 13});
  random->build();
  const auto select_lat =
      pubsub::measure_latency(*select, net, publishers);
  const auto random_lat =
      pubsub::measure_latency(*random, net, publishers);
  EXPECT_LT(select_lat.per_tree_s.mean(), random_lat.per_tree_s.mean());
}

TEST(Integration, EverySystemWorksOnEveryProfileSmall) {
  for (const auto& profile : graph::all_profiles()) {
    const auto g = graph::make_dataset_graph(profile, 250, 17);
    for (const auto name : baselines::all_system_names()) {
      auto sys = baselines::make_system(name, g, {.seed = 17});
      sys->build();
      const auto hops = pubsub::measure_hops(*sys, 60, 17);
      EXPECT_GT(hops.success_rate(), 0.9)
          << profile.name << "/" << name;
    }
  }
}

TEST(Integration, FactoryRejectsUnknownName) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 64, 1);
  EXPECT_DEATH((void)baselines::make_system("nope", g, {.seed = 1}), "Invariant");
}

}  // namespace
}  // namespace sel
