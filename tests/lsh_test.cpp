#include "lsh/lsh.hpp"

#include <gtest/gtest.h>

namespace sel::lsh {
namespace {

DynamicBitset make_bitmap(std::size_t dim, std::initializer_list<std::size_t> bits) {
  DynamicBitset b(dim);
  for (const auto i : bits) b.set(i);
  return b;
}

TEST(BitSamplingHasher, Deterministic) {
  BitSamplingHasher h(64, 12, 1);
  const auto b = make_bitmap(64, {1, 5, 30});
  EXPECT_EQ(h.hash(b), h.hash(b));
}

TEST(BitSamplingHasher, EqualBitmapsCollide) {
  BitSamplingHasher h(32, 10, 2);
  const auto a = make_bitmap(32, {3, 7, 21});
  const auto b = make_bitmap(32, {3, 7, 21});
  EXPECT_EQ(h.hash(a), h.hash(b));
}

TEST(BitSamplingHasher, HashWidthBounded) {
  BitSamplingHasher h(16, 8, 3);
  const auto b = make_bitmap(16, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_LT(h.hash(b), 1ULL << 8);
}

TEST(BitSamplingHasher, CollisionProbabilityDecreasesWithHamming) {
  // Statistical LSH property: close bitmaps collide more often than far
  // ones, across independently drawn hash functions.
  const std::size_t dim = 128;
  const auto base = make_bitmap(dim, {1, 10, 20, 30, 40, 50, 60, 70});
  auto near = base;
  near.set(90);  // hamming 1
  DynamicBitset far(dim);
  for (std::size_t i = 0; i < dim; i += 2) far.set(i);  // hamming ~60

  int near_collisions = 0;
  int far_collisions = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    BitSamplingHasher h(dim, 8, seed);
    if (h.hash(base) == h.hash(near)) ++near_collisions;
    if (h.hash(base) == h.hash(far)) ++far_collisions;
  }
  EXPECT_GT(near_collisions, far_collisions * 3);
}

TEST(BitSamplingHasher, ShorterBitmapReadsAsZeros) {
  BitSamplingHasher h(64, 10, 5);
  DynamicBitset small(8);  // positions >= 8 read as 0
  DynamicBitset empty64(64);
  EXPECT_EQ(h.hash(small), h.hash(empty64));
}

TEST(LshIndex, InsertAndBucketLookup) {
  LshIndex index(32, 4, 8, 1);
  const auto b = make_bitmap(32, {1, 2});
  index.insert(7, b);
  EXPECT_EQ(index.size(), 1u);
  const std::size_t bucket = index.bucket_of(b);
  ASSERT_LT(bucket, index.num_buckets());
  ASSERT_EQ(index.bucket(bucket).size(), 1u);
  EXPECT_EQ(index.bucket(bucket)[0].peer, 7u);
  EXPECT_EQ(index.bucket_of_peer(7), bucket);
}

TEST(LshIndex, ReinsertReplacesPrevious) {
  LshIndex index(32, 4, 8, 2);
  index.insert(3, make_bitmap(32, {1}));
  index.insert(3, make_bitmap(32, {1, 2, 3, 4, 5}));
  EXPECT_EQ(index.size(), 1u);
}

TEST(LshIndex, EraseRemovesPeer) {
  LshIndex index(32, 4, 8, 3);
  index.insert(1, make_bitmap(32, {1}));
  index.insert(2, make_bitmap(32, {2}));
  index.erase(1);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.bucket_of_peer(1), static_cast<std::size_t>(-1));
  index.erase(99);  // no-op
  EXPECT_EQ(index.size(), 1u);
}

TEST(LshIndex, IdenticalBitmapsShareBucket) {
  LshIndex index(64, 8, 10, 4);
  const auto b = make_bitmap(64, {5, 15, 25});
  index.insert(1, b);
  index.insert(2, b);
  EXPECT_EQ(index.bucket_of_peer(1), index.bucket_of_peer(2));
}

TEST(LshIndex, SameBucketPeersExcludesSelf) {
  LshIndex index(64, 8, 10, 5);
  const auto b = make_bitmap(64, {5, 15, 25});
  index.insert(1, b);
  index.insert(2, b);
  index.insert(3, b);
  const auto peers = index.same_bucket_peers(2);
  EXPECT_EQ(peers.size(), 2u);
  for (const auto p : peers) EXPECT_NE(p, 2u);
}

TEST(LshIndex, SameBucketPeersOfUnknownIsEmpty) {
  LshIndex index(64, 8, 10, 6);
  EXPECT_TRUE(index.same_bucket_peers(42).empty());
}

TEST(LshIndex, ClearEmptiesEverything) {
  LshIndex index(32, 4, 8, 7);
  index.insert(1, make_bitmap(32, {1}));
  index.insert(2, make_bitmap(32, {2}));
  index.clear();
  EXPECT_EQ(index.size(), 0u);
  for (std::size_t b = 0; b < index.num_buckets(); ++b) {
    EXPECT_TRUE(index.bucket(b).empty());
  }
}

TEST(LshIndex, SpreadsDistinctBitmapsAcrossBuckets) {
  LshIndex index(128, 8, 12, 8);
  for (std::uint32_t p = 0; p < 64; ++p) {
    DynamicBitset b(128);
    for (std::size_t i = 0; i < 128; ++i) {
      if (splitmix64(p * 131 + i) & 1) b.set(i);
    }
    index.insert(p, b);
  }
  std::size_t nonempty = 0;
  for (std::size_t b = 0; b < index.num_buckets(); ++b) {
    if (!index.bucket(b).empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 6u);  // of 8 buckets
}

TEST(LshIndex, AtLeastOneBucketAlways) {
  LshIndex index(16, 0, 4, 9);  // buckets clamped to >= 1
  EXPECT_EQ(index.num_buckets(), 1u);
}

}  // namespace
}  // namespace sel::lsh
