#include <gtest/gtest.h>

#include "net/network_model.hpp"

namespace sel::net {
namespace {

TEST(GeoModel, DisabledByDefault) {
  NetworkModel net(50, 1);
  EXPECT_EQ(net.num_regions(), 0u);
  for (std::size_t p = 0; p < 50; ++p) EXPECT_EQ(net.region_of(p), 0u);
}

TEST(GeoModel, AssignsAllRegions) {
  NetworkModel net(600, 2, default_bandwidth_mix(), 40.0, 0.5,
                   GeoParams{.regions = 4});
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t p = 0; p < 600; ++p) {
    const std::size_t r = net.region_of(p);
    ASSERT_LT(r, 4u);
    ++counts[r];
  }
  for (const auto c : counts) EXPECT_GT(c, 80u);  // roughly balanced
}

TEST(GeoModel, InterRegionPairsPayExtraLatency) {
  const GeoParams geo{.regions = 3, .inter_region_extra_ms = 100.0};
  NetworkModel net(400, 3, default_bandwidth_mix(), 40.0, 0.5, geo);
  double intra_total = 0.0;
  std::size_t intra_n = 0;
  double inter_total = 0.0;
  std::size_t inter_n = 0;
  for (std::size_t a = 0; a < 400; ++a) {
    const std::size_t b = (a + 37) % 400;
    if (a == b) continue;
    if (net.region_of(a) == net.region_of(b)) {
      intra_total += net.latency_s(a, b);
      ++intra_n;
    } else {
      inter_total += net.latency_s(a, b);
      ++inter_n;
    }
  }
  ASSERT_GT(intra_n, 20u);
  ASSERT_GT(inter_n, 20u);
  EXPECT_GT(inter_total / inter_n, intra_total / intra_n + 0.05);
}

TEST(GeoModel, RegionAssignmentDeterministic) {
  const GeoParams geo{.regions = 5};
  NetworkModel a(100, 7, default_bandwidth_mix(), 40.0, 0.5, geo);
  NetworkModel b(100, 7, default_bandwidth_mix(), 40.0, 0.5, geo);
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_EQ(a.region_of(p), b.region_of(p));
  }
}

TEST(GeoModel, LatencyStillSymmetric) {
  const GeoParams geo{.regions = 4};
  NetworkModel net(100, 9, default_bandwidth_mix(), 40.0, 0.5, geo);
  for (std::size_t a = 0; a < 100; a += 7) {
    const std::size_t b = (a + 31) % 100;
    EXPECT_DOUBLE_EQ(net.latency_s(a, b), net.latency_s(b, a));
  }
}

}  // namespace
}  // namespace sel::net
