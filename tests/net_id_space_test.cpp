#include "net/id_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sel::net {
namespace {

TEST(OverlayId, WrapsIntoUnitInterval) {
  EXPECT_DOUBLE_EQ(OverlayId(0.25).value(), 0.25);
  EXPECT_DOUBLE_EQ(OverlayId(1.25).value(), 0.25);
  EXPECT_DOUBLE_EQ(OverlayId(-0.25).value(), 0.75);
  EXPECT_DOUBLE_EQ(OverlayId(2.0).value(), 0.0);
}

TEST(OverlayId, FromHashInRange) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double v = OverlayId::from_hash(k).value();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(OverlayId, FromHashIsDeterministicAndSpread) {
  EXPECT_EQ(OverlayId::from_hash(7), OverlayId::from_hash(7));
  // Consecutive keys should land far apart on average.
  double total = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    total += ring_distance(OverlayId::from_hash(k), OverlayId::from_hash(k + 1));
  }
  EXPECT_GT(total / 100.0, 0.1);
}

TEST(RingDistance, BasicProperties) {
  EXPECT_DOUBLE_EQ(ring_distance(OverlayId(0.1), OverlayId(0.1)), 0.0);
  EXPECT_DOUBLE_EQ(ring_distance(OverlayId(0.1), OverlayId(0.3)), 0.2);
  EXPECT_DOUBLE_EQ(ring_distance(OverlayId(0.3), OverlayId(0.1)), 0.2);
  // Wraps the short way around.
  EXPECT_NEAR(ring_distance(OverlayId(0.95), OverlayId(0.05)), 0.1, 1e-12);
}

TEST(RingDistance, MaxIsHalf) {
  EXPECT_DOUBLE_EQ(ring_distance(OverlayId(0.0), OverlayId(0.5)), 0.5);
  EXPECT_LE(ring_distance(OverlayId(0.13), OverlayId(0.77)), 0.5);
}

TEST(ClockwiseDistance, Directional) {
  EXPECT_NEAR(clockwise_distance(OverlayId(0.2), OverlayId(0.5)), 0.3, 1e-12);
  EXPECT_NEAR(clockwise_distance(OverlayId(0.5), OverlayId(0.2)), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(clockwise_distance(OverlayId(0.4), OverlayId(0.4)), 0.0);
}

TEST(RingMidpoint, SimpleMidpoint) {
  const OverlayId m = ring_midpoint(OverlayId(0.2), OverlayId(0.4));
  EXPECT_NEAR(m.value(), 0.3, 1e-12);
}

TEST(RingMidpoint, WrapsAcrossZero) {
  const OverlayId m = ring_midpoint(OverlayId(0.9), OverlayId(0.1));
  EXPECT_NEAR(m.value(), 0.0, 1e-12);
}

TEST(RingMidpoint, IsSymmetric) {
  const OverlayId a(0.15);
  const OverlayId b(0.75);
  EXPECT_NEAR(ring_midpoint(a, b).value(), ring_midpoint(b, a).value(), 1e-12);
}

TEST(RingMidpoint, EquidistantFromBothEnds) {
  const OverlayId a(0.13);
  const OverlayId b(0.57);
  const OverlayId m = ring_midpoint(a, b);
  EXPECT_NEAR(ring_distance(m, a), ring_distance(m, b), 1e-12);
}

TEST(RingMidpoint, OnShorterArc) {
  const OverlayId a(0.95);
  const OverlayId b(0.15);
  const OverlayId m = ring_midpoint(a, b);
  // Shorter arc crosses 0; midpoint is 0.05, not 0.55.
  EXPECT_NEAR(m.value(), 0.05, 1e-12);
}

TEST(Advance, MovesAndWraps) {
  EXPECT_NEAR(advance(OverlayId(0.9), 0.2).value(), 0.1, 1e-12);
  EXPECT_NEAR(advance(OverlayId(0.1), -0.2).value(), 0.9, 1e-12);
}

TEST(CircularMean, OfSinglePoint) {
  const OverlayId m =
      circular_mean({OverlayId(0.3)}, OverlayId(0.0));
  EXPECT_NEAR(m.value(), 0.3, 1e-9);
}

TEST(CircularMean, OfClusteredPoints) {
  const OverlayId m = circular_mean(
      {OverlayId(0.95), OverlayId(0.05)}, OverlayId(0.5));
  EXPECT_NEAR(ring_distance(m, OverlayId(0.0)), 0.0, 1e-9);
}

TEST(CircularMean, EmptyReturnsFallback) {
  EXPECT_EQ(circular_mean({}, OverlayId(0.42)), OverlayId(0.42));
}

TEST(CircularMean, AntipodalReturnsFallback) {
  const OverlayId m = circular_mean(
      {OverlayId(0.0), OverlayId(0.5)}, OverlayId(0.42));
  EXPECT_EQ(m, OverlayId(0.42));
}

TEST(Near, StaysWithinEpsilon) {
  const OverlayId anchor(0.5);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const OverlayId id = near(anchor, k, 1e-3);
    EXPECT_LE(ring_distance(id, anchor), 1e-3 + 1e-12);
  }
}

TEST(Near, DistinctKeysUsuallyDistinct) {
  const OverlayId anchor(0.2);
  EXPECT_NE(near(anchor, 1).value(), near(anchor, 2).value());
}

// Property sweep: midpoint invariants over many random pairs.
class MidpointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MidpointSweep, MidpointEquidistantAndOnShortArc) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const OverlayId a(rng.uniform());
    const OverlayId b(rng.uniform());
    const OverlayId m = ring_midpoint(a, b);
    const double d = ring_distance(a, b);
    EXPECT_NEAR(ring_distance(m, a), d / 2.0, 1e-9);
    EXPECT_NEAR(ring_distance(m, b), d / 2.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MidpointSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace sel::net
