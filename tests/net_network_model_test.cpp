#include "net/network_model.hpp"

#include <gtest/gtest.h>

namespace sel::net {
namespace {

TEST(NetworkModel, AssignsProfilesToEveryPeer) {
  NetworkModel net(100, 1);
  EXPECT_EQ(net.num_peers(), 100u);
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_GT(net.profile(p).up_bps, 0.0);
    EXPECT_GT(net.profile(p).down_bps, 0.0);
  }
}

TEST(NetworkModel, DeterministicPerSeed) {
  NetworkModel a(50, 7);
  NetworkModel b(50, 7);
  for (std::size_t p = 0; p < 50; ++p) {
    EXPECT_DOUBLE_EQ(a.uplink_bps(p), b.uplink_bps(p));
    EXPECT_DOUBLE_EQ(a.latency_s(p, (p + 1) % 50), b.latency_s(p, (p + 1) % 50));
  }
}

TEST(NetworkModel, DifferentSeedsGiveDifferentAssignments) {
  NetworkModel a(200, 1);
  NetworkModel b(200, 2);
  int diff = 0;
  for (std::size_t p = 0; p < 200; ++p) {
    if (a.uplink_bps(p) != b.uplink_bps(p)) ++diff;
  }
  EXPECT_GT(diff, 20);
}

TEST(NetworkModel, MixCoversAllClasses) {
  NetworkModel net(2000, 3);
  std::size_t adsl = 0;
  std::size_t fiber = 0;
  for (std::size_t p = 0; p < 2000; ++p) {
    if (net.uplink_bps(p) == 1e6) ++adsl;
    if (net.uplink_bps(p) == 100e6) ++fiber;
  }
  // 15% each in the default mix.
  EXPECT_NEAR(static_cast<double>(adsl) / 2000.0, 0.15, 0.04);
  EXPECT_NEAR(static_cast<double>(fiber) / 2000.0, 0.15, 0.04);
}

TEST(NetworkModel, SelfLatencyIsZero) {
  NetworkModel net(10, 1);
  EXPECT_DOUBLE_EQ(net.latency_s(3, 3), 0.0);
}

TEST(NetworkModel, LatencyIsSymmetricAndPositive) {
  NetworkModel net(40, 5);
  for (std::size_t a = 0; a < 40; ++a) {
    for (std::size_t b = a + 1; b < 40; b += 7) {
      EXPECT_GT(net.latency_s(a, b), 0.0);
      EXPECT_DOUBLE_EQ(net.latency_s(a, b), net.latency_s(b, a));
    }
  }
}

TEST(NetworkModel, MedianLatencyNearConfigured) {
  NetworkModel net(200, 9, default_bandwidth_mix(), 40.0, 0.5);
  std::vector<double> lats;
  for (std::size_t a = 0; a < 200; ++a) {
    lats.push_back(net.latency_s(a, (a + 13) % 200));
  }
  std::nth_element(lats.begin(), lats.begin() + lats.size() / 2, lats.end());
  EXPECT_NEAR(lats[lats.size() / 2], 0.040, 0.015);
}

TEST(NetworkModel, TransferTimeFollowsBottleneckFormula) {
  NetworkModel net(10, 1);
  const double lat = net.latency_s(0, 1);
  const double up = net.profile(0).up_bps;
  const double down = net.profile(1).down_bps;
  const double bytes = 1.2e6;
  const double expected = lat + bytes * 8.0 / std::min(up, down);
  EXPECT_DOUBLE_EQ(net.transfer_time_s(0, 1, bytes), expected);
}

TEST(NetworkModel, ConcurrentSendsSplitUplink) {
  NetworkModel net(10, 1);
  const double t1 = net.transfer_time_s(0, 1, 1.2e6, 1);
  const double t4 = net.transfer_time_s(0, 1, 1.2e6, 4);
  EXPECT_GT(t4, t1);
}

TEST(NetworkModel, ZeroBytesIsPureLatency) {
  NetworkModel net(10, 1);
  EXPECT_DOUBLE_EQ(net.transfer_time_s(0, 1, 0.0), net.latency_s(0, 1));
}

TEST(NetworkModel, StarBroadcastGrowsWithFanout) {
  // The Sec. IV-D experiment: total time grows roughly linearly in the
  // number of simultaneous receivers once the uplink saturates.
  NetworkModel net(200, 11);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t r = 1; r <= 4; ++r) small.push_back(r);
  for (std::size_t r = 1; r <= 64; ++r) large.push_back(r);
  const double t_small = net.star_broadcast_time_s(0, small, 1.2e6);
  const double t_large = net.star_broadcast_time_s(0, large, 1.2e6);
  EXPECT_GT(t_large, t_small * 8.0);  // ~16x more receivers
}

TEST(NetworkModel, StarBroadcastEmptyIsZero) {
  NetworkModel net(5, 1);
  EXPECT_DOUBLE_EQ(net.star_broadcast_time_s(0, {}, 1.2e6), 0.0);
}

}  // namespace
}  // namespace sel::net
