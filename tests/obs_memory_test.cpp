// Resource observability tests: tagged-allocator attribution, MemScope
// nesting, SEL_MEM_BUDGET soft-fail, and deterministic cross-shard
// snapshot merging (no processes here — the registry merge is pure data;
// the forked two-process path is covered by runtime_socket_transport_test).
//
// This file gets its own test binary (tests_obs_memory): the budget knob is
// parsed once per process from SEL_MEM_BUDGET, so the static initializer
// below must run before anything else touches mem_budget_bytes().
#include "obs/memory.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/memory_checks.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace sel::obs {
namespace {

// Arm a tiny budget before any lazy parse (mem_budget_bytes caches on
// first call). 4 KiB: small enough for a test vector to overrun, large
// enough that an empty tracker sits below it.
const bool kBudgetEnvArmed = [] {
  ::setenv("SEL_MEM_BUDGET", "4k", 1);
  return true;
}();

TEST(Subsystem, NamesAreStable) {
  EXPECT_STREQ(subsystem_name(Subsystem::kGraph), "graph");
  EXPECT_STREQ(subsystem_name(Subsystem::kOverlay), "overlay");
  EXPECT_STREQ(subsystem_name(Subsystem::kPubsub), "pubsub");
  EXPECT_STREQ(subsystem_name(Subsystem::kRuntime), "runtime");
  EXPECT_STREQ(subsystem_name(Subsystem::kArena), "arena");
  EXPECT_STREQ(subsystem_name(Subsystem::kOther), "other");
}

TEST(Accounted, AttributionRoundTripsToZero) {
  auto& tracker = MemTracker::global();
  const std::int64_t before = tracker.live_bytes(Subsystem::kRuntime);
  const std::int64_t total_before = tracker.total_live_bytes();
  {
    AccountedVector<std::uint64_t, Subsystem::kRuntime> v;
    v.reserve(1000);
    EXPECT_GE(tracker.live_bytes(Subsystem::kRuntime),
              before + static_cast<std::int64_t>(1000 * sizeof(std::uint64_t)));
    // Growth reallocations charge and discharge the same subsystem.
    v.resize(5000);
    EXPECT_GE(tracker.live_bytes(Subsystem::kRuntime),
              before + static_cast<std::int64_t>(5000 * sizeof(std::uint64_t)));
  }
  // Exactness: after a full alloc/free round-trip the subsystem (and the
  // total) are back to their starting bytes, bit for bit.
  EXPECT_EQ(tracker.live_bytes(Subsystem::kRuntime), before);
  EXPECT_EQ(tracker.total_live_bytes(), total_before);
}

TEST(Accounted, CopyAndMoveKeepAttributionBalanced) {
  auto& tracker = MemTracker::global();
  const std::int64_t before = tracker.live_bytes(Subsystem::kRuntime);
  {
    AccountedVector<int, Subsystem::kRuntime> a(1024, 7);
    AccountedVector<int, Subsystem::kRuntime> b = a;          // copy
    AccountedVector<int, Subsystem::kRuntime> c = std::move(a);  // move
    b.swap(c);
    EXPECT_GE(tracker.live_bytes(Subsystem::kRuntime),
              before + static_cast<std::int64_t>(2 * 1024 * sizeof(int)));
  }
  EXPECT_EQ(tracker.live_bytes(Subsystem::kRuntime), before);
}

TEST(MemScope, DynamicTagFollowsInnermostScope) {
  auto& tracker = MemTracker::global();
  EXPECT_EQ(MemScope::current(), Subsystem::kOther);
  const std::int64_t pubsub_before = tracker.live_bytes(Subsystem::kPubsub);
  const std::int64_t graph_before = tracker.live_bytes(Subsystem::kGraph);
  const std::int64_t other_before = tracker.live_bytes(Subsystem::kOther);
  {
    std::vector<int, Accounted<int>> outer;
    {
      MemScope scope(Subsystem::kPubsub);
      EXPECT_EQ(MemScope::current(), Subsystem::kPubsub);
      // The tag is captured at allocator construction, not per allocation:
      // `outer` predates the scope, so it charges kOther even while the
      // scope is active.
      outer.reserve(100);
      std::vector<int, Accounted<int>> inner;
      {
        MemScope nested(Subsystem::kGraph);
        std::vector<int, Accounted<int>> innermost(200);
        EXPECT_EQ(tracker.live_bytes(Subsystem::kGraph),
                  graph_before +
                      static_cast<std::int64_t>(200 * sizeof(int)));
      }
      EXPECT_EQ(MemScope::current(), Subsystem::kPubsub);  // nesting pops
      inner.resize(300);
      EXPECT_GE(tracker.live_bytes(Subsystem::kPubsub),
                pubsub_before +
                    static_cast<std::int64_t>(300 * sizeof(int)));
    }
    // `outer` still holds its kOther-tagged buffer after the scope died;
    // the tag travels with the allocator, so the discharge stays balanced.
    EXPECT_GE(tracker.live_bytes(Subsystem::kOther),
              other_before + static_cast<std::int64_t>(100 * sizeof(int)));
  }
  EXPECT_EQ(tracker.live_bytes(Subsystem::kPubsub), pubsub_before);
  EXPECT_EQ(tracker.live_bytes(Subsystem::kGraph), graph_before);
  EXPECT_EQ(tracker.live_bytes(Subsystem::kOther), other_before);
}

TEST(MemTracker, PeakTracksInterleavedHighWater) {
  // kArena is untouched elsewhere in this binary, so peaks are exact.
  auto& tracker = MemTracker::global();
  const std::int64_t live_before = tracker.live_bytes(Subsystem::kArena);
  constexpr std::int64_t kBig = 64 * 1024;
  constexpr std::int64_t kSmall = 16 * 1024;
  {
    AccountedVector<char, Subsystem::kArena> big(kBig);
    EXPECT_GE(tracker.peak_bytes(Subsystem::kArena), live_before + kBig);
  }
  const std::int64_t peak_after_big = tracker.peak_bytes(Subsystem::kArena);
  {
    AccountedVector<char, Subsystem::kArena> small(kSmall);
    // The smaller allocation must not move the high-water mark.
    EXPECT_EQ(tracker.peak_bytes(Subsystem::kArena), peak_after_big);
    EXPECT_EQ(tracker.live_bytes(Subsystem::kArena), live_before + kSmall);
  }
  EXPECT_EQ(tracker.live_bytes(Subsystem::kArena), live_before);
  EXPECT_EQ(tracker.peak_bytes(Subsystem::kArena), peak_after_big);
}

TEST(Rss, ReadRssReportsResidentBytes) {
  const RssSample sample = read_rss();
  // Linux CI/dev boxes always expose /proc; both fields are populated and
  // the high-water mark bounds the current value.
  EXPECT_GT(sample.rss_bytes, 0);
  EXPECT_GE(sample.rss_peak_bytes, sample.rss_bytes);
}

TEST(Rss, BytesPerPeerUsesPeerCount) {
  set_peer_count(1000);
  const auto values = memory_values();
  ASSERT_TRUE(values.contains("mem.bytes_per_peer"));
  const double rss = values.at("mem.rss_bytes");
  EXPECT_DOUBLE_EQ(values.at("mem.bytes_per_peer"), rss / 1000.0);
  ASSERT_TRUE(values.contains("mem.graph.live_bytes"));
  ASSERT_TRUE(values.contains("mem.tracked.peak_bytes"));
  set_peer_count(0);
  EXPECT_FALSE(memory_values().contains("mem.bytes_per_peer"));
}

TEST(MemoryBudget, ValidatorCoversUnderAndOverrun) {
  // Disabled budget never fires, regardless of live bytes.
  EXPECT_FALSE(check::validate_memory_budget(0, 1 << 30, "x").has_value());
  // Underrun (and exactly-at-budget) holds.
  EXPECT_FALSE(check::validate_memory_budget(100, 50, "x").has_value());
  EXPECT_FALSE(check::validate_memory_budget(100, 100, "x").has_value());
  // Overrun carries the budget and the breakdown.
  const auto v = check::validate_memory_budget(100, 150, "graph=1.0KiB");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "mem.budget");
  EXPECT_NE(v->detail.find("SEL_MEM_BUDGET=100"), std::string::npos);
  EXPECT_NE(v->detail.find("graph=1.0KiB"), std::string::npos);
}

TEST(MemoryBudget, TripReportsOnceAndRearms) {
  ASSERT_EQ(mem_budget_bytes(), 4 * 1024) << "SEL_MEM_BUDGET=4k not armed "
                                             "before the first lazy parse";
  check::reset_memory_budget_trip();
  // Under budget: no trip.
  {
    check::ScopedFailureCapture capture;
    EXPECT_TRUE(check::check_memory_budget());
    EXPECT_TRUE(capture.empty());
  }
  AccountedVector<char, Subsystem::kPubsub> hog(64 * 1024);
  ASSERT_TRUE(budget_exceeded());
  check::ScopedFailureCapture capture;
  // First overrun trips with the subsystem breakdown attached...
  EXPECT_FALSE(check::check_memory_budget());
  ASSERT_EQ(capture.violations().size(), 1u);
  EXPECT_EQ(capture.violations()[0].invariant, "mem.budget");
  EXPECT_NE(capture.violations()[0].detail.find("pubsub="),
            std::string::npos);
  // ...then latches: still over budget, but no violation spam.
  EXPECT_TRUE(check::check_memory_budget());
  EXPECT_EQ(capture.violations().size(), 1u);
  // Tests re-arm explicitly.
  check::reset_memory_budget_trip();
  EXPECT_FALSE(check::check_memory_budget());
  EXPECT_EQ(capture.violations().size(), 2u);
  check::reset_memory_budget_trip();
}

// -- cross-shard snapshot merging -------------------------------------------

TEST(MergeSnapshot, SumsCountersSpansAndHistograms) {
  MetricsRegistry shard;
  shard.counter("pubsub.deliveries").add(5);
  shard.counter("fault.stalls").add(2);
  shard.span("shard.serve").record_ns(1000);
  shard.span("shard.serve").record_ns(500);
  auto& h = shard.histogram("hops", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const Snapshot remote = shard.snapshot();

  MetricsRegistry driver;
  driver.counter("pubsub.deliveries").add(10);
  driver.merge_snapshot(remote, 1);
  driver.merge_snapshot(remote, 2);

  const Snapshot merged = driver.snapshot();
  EXPECT_EQ(merged.counter("pubsub.deliveries"), 20);
  EXPECT_EQ(merged.counter("fault.stalls"), 4);
  EXPECT_EQ(merged.counter("runtime.shard.snapshots_merged"), 2);
  for (const auto& s : merged.spans) {
    if (s.name == "shard.serve") {
      EXPECT_EQ(s.count, 4);
      EXPECT_EQ(s.total_ns, 3000);
    }
  }
  for (const auto& hs : merged.histograms) {
    if (hs.name == "hops") {
      EXPECT_EQ(hs.count, 6);
      ASSERT_EQ(hs.counts.size(), 3u);
      EXPECT_EQ(hs.counts[0], 2);  // bucket-wise: bounds match
      EXPECT_EQ(hs.counts[1], 2);
      EXPECT_EQ(hs.counts[2], 2);
      EXPECT_DOUBLE_EQ(hs.sum, 22.0);
      EXPECT_DOUBLE_EQ(hs.min, 0.5);
      EXPECT_DOUBLE_EQ(hs.max, 9.0);
    }
  }
}

TEST(MergeSnapshot, MismatchedHistogramBoundsFoldIntoOverflow) {
  MetricsRegistry shard;
  auto& h = shard.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);

  MetricsRegistry driver;
  driver.histogram("lat", {10.0});  // different bounds win (registered first)
  driver.merge_snapshot(shard.snapshot(), 1);

  for (const auto& hs : driver.snapshot().histograms) {
    if (hs.name == "lat") {
      // Aggregates exact, buckets folded into overflow.
      EXPECT_EQ(hs.count, 2);
      EXPECT_DOUBLE_EQ(hs.sum, 2.0);
      ASSERT_EQ(hs.counts.size(), 2u);
      EXPECT_EQ(hs.counts[0], 0);
      EXPECT_EQ(hs.counts[1], 2);
    }
  }
}

TEST(MergeSnapshot, MemGaugesGetShardNamespaceOthersDrop) {
  MetricsRegistry shard;
  shard.gauge("mem.pubsub.live_bytes").set(123.0);
  shard.gauge("mem.rss_bytes").set(4096.0);
  shard.gauge("pubsub.delivery_rate").set(0.5);  // driver owns run gauges
  const Snapshot remote = shard.snapshot();

  MetricsRegistry driver;
  driver.merge_snapshot(remote, 3);

  double shard_live = -1.0;
  double shard_rss = -1.0;
  bool saw_rate = false;
  for (const auto& g : driver.snapshot().gauges) {
    if (g.name == "mem.shard3.pubsub.live_bytes") shard_live = g.value;
    if (g.name == "mem.shard3.rss_bytes") shard_rss = g.value;
    if (g.name == "pubsub.delivery_rate") saw_rate = true;
  }
  EXPECT_DOUBLE_EQ(shard_live, 123.0);
  EXPECT_DOUBLE_EQ(shard_rss, 4096.0);
  EXPECT_FALSE(saw_rate);
}

TEST(MergeSnapshot, AscendingOrderMergeIsDeterministic) {
  // Two drivers merging the same shard snapshots in the same (ascending id)
  // order serialize to byte-identical JSON — the determinism the parent
  // report's bit-for-bit acceptance rides on.
  MetricsRegistry s1;
  s1.counter("fault.drops").add(3);
  s1.gauge("mem.tracked.live_bytes").set(111.0);
  MetricsRegistry s2;
  s2.counter("fault.drops").add(4);
  s2.gauge("mem.tracked.live_bytes").set(222.0);

  const auto merge_all = [&] {
    MetricsRegistry driver;
    driver.counter("pubsub.publishes").add(7);
    driver.merge_snapshot(s1.snapshot(), 1);
    driver.merge_snapshot(s2.snapshot(), 2);
    return snapshot_to_json(driver.snapshot()).dump();
  };
  EXPECT_EQ(merge_all(), merge_all());
}

TEST(RunReport, MemorySectionRoundTripsThroughJson) {
  RunReport report;
  report.experiment = "obs_memory_test";
  report.memory = {{"mem.rss_bytes", 1234.0},
                   {"mem.graph.live_bytes", 56.0}};
  const auto parsed = RunReport::from_json(report.to_json());
  EXPECT_EQ(parsed.memory, report.memory);

  // Pre-v3 document (no `memory` key at all) stays readable: the section
  // parses empty instead of throwing.
  const auto v2 = json::Value::parse(
      R"({"schema_version": 2, "experiment": "old", "git_describe": "x",)"
      R"( "metadata": {}, "metrics": {"counters": {}, "gauges": {},)"
      R"( "histograms": {}, "spans": {}, "rounds": []}, "timeseries": []})");
  const auto parsed_v2 = RunReport::from_json(v2);
  EXPECT_TRUE(parsed_v2.memory.empty());
  EXPECT_EQ(parsed_v2.experiment, "old");
}

}  // namespace
}  // namespace sel::obs
