#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "graph/profiles.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "select/protocol.hpp"

namespace sel::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  auto& c = reg.counter("t.counter");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(ObsCounter, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  auto& a = reg.counter("t.same");
  auto& b = reg.counter("t.same");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  auto& c = reg.counter("t.concurrent");
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, LastWriteWins) {
  MetricsRegistry reg;
  auto& g = reg.gauge("t.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsHistogram, BucketsCountSumMinMax) {
  MetricsRegistry reg;
  auto& h = reg.histogram("t.hist", {1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper edge)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_DOUBLE_EQ(h.mean(), 556.5 / 5.0);
}

TEST(ObsHistogram, ConcurrentObservationsSumExactly) {
  MetricsRegistry reg;
  auto& h = reg.histogram("t.hist.mt", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.counts()[1], kThreads * kPerThread);  // all in overflow
}

TEST(ObsSpan, ScopedSpanTimingIsMonotonic) {
  auto& span = MetricsRegistry::global().span("t.span.mono");
  const auto count0 = span.count();
  const auto ns0 = span.total_ns();
  {
    ScopedSpan scope(span);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto count1 = span.count();
  const auto ns1 = span.total_ns();
  EXPECT_EQ(count1, count0 + 1);
  EXPECT_GE(ns1 - ns0, 2'000'000);  // at least the 2ms slept
  {
    ScopedSpan scope(span);
  }
  // Totals never decrease; every recorded span adds a non-negative duration.
  EXPECT_EQ(span.count(), count1 + 1);
  EXPECT_GE(span.total_ns(), ns1);
}

TEST(ObsSpan, TraceScopeMacroAccumulates) {
  auto& span = MetricsRegistry::global().span("t.span.macro");
  const auto before = span.count();
  for (int i = 0; i < 3; ++i) {
    SEL_TRACE_SCOPE("t.span.macro");
  }
  EXPECT_EQ(span.count(), before + 3);
}

TEST(ObsRegistry, SnapshotContainsAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("c.one").add(5);
  reg.gauge("g.one").set(1.5);
  reg.histogram("h.one", {1.0}).observe(0.5);
  reg.span("s.one").record_ns(1000);
  reg.add_round({"test.round", 0, 1.0, 0.25, 0.5, 42});

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c.one"), 5);
  EXPECT_EQ(snap.counter("absent"), 0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].total_ns, 1000);
  ASSERT_EQ(snap.rounds.size(), 1u);
  EXPECT_EQ(snap.rounds[0].messages, 42u);
}

TEST(ObsRegistry, ResetZeroesEverythingButKeepsHandles) {
  MetricsRegistry reg;
  auto& c = reg.counter("c.reset");
  c.add(9);
  reg.gauge("g.reset").set(3.0);
  reg.add_round({"r", 1, 0.0, 0.0, 0.0, 1});
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c.reset"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.0);
  EXPECT_TRUE(snap.rounds.empty());
  c.add(2);
  EXPECT_EQ(c.value(), 2);
}

TEST(ObsJson, ParsesScalarsContainersAndEscapes) {
  const auto v = json::Value::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "q\"\nA",)"
      R"( "nil": null, "f": false})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_double(), -300.0);
  EXPECT_TRUE(v.at("b").at("nested").as_bool());
  EXPECT_EQ(v.at("s").as_string(), "q\"\nA");
  EXPECT_TRUE(v.at("nil").is_null());
  EXPECT_FALSE(v.at("f").as_bool());
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW((void)json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{} junk"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("\"unterminated"),
               std::runtime_error);
}

TEST(ObsJson, DumpParseRoundTripPreservesIntegers) {
  json::Value v;
  v["big"] = json::Value(std::int64_t{1'234'567'890'123});
  v["neg"] = json::Value(std::int64_t{-42});
  v["frac"] = json::Value(0.125);
  const auto parsed = json::Value::parse(v.dump());
  EXPECT_EQ(parsed.at("big").as_int64(), 1'234'567'890'123);
  EXPECT_EQ(parsed.at("neg").as_int64(), -42);
  EXPECT_DOUBLE_EQ(parsed.at("frac").as_double(), 0.125);
}

TEST(ObsReport, JsonRoundTripPreservesEverything) {
  MetricsRegistry reg;
  reg.counter("select.gossip_exchanges").add(123);
  reg.counter("pubsub.relay_forwards").add(7);
  reg.gauge("select.run.n").set(1000.0);
  reg.histogram("pubsub.delivery_latency_s", {0.1, 1.0}).observe(0.05);
  reg.span("select.build").record_ns(5'000'000);
  reg.add_round({"select.round", 0, 12.5, 0.0, 3.25, 400});
  reg.add_round({"select.round", 1, 11.0, 0.0, 3.0, 380});

  RunReport report;
  report.experiment = "unit_test";
  report.git_describe = "v1-test";
  report.metadata["n"] = "1000";
  report.metadata["seed"] = "42";
  report.snapshot = reg.snapshot();

  const auto parsed = RunReport::from_json(
      json::Value::parse(report.to_json().dump(2)));

  EXPECT_EQ(parsed.experiment, "unit_test");
  EXPECT_EQ(parsed.git_describe, "v1-test");
  EXPECT_EQ(parsed.metadata.at("n"), "1000");
  EXPECT_EQ(parsed.metadata.at("seed"), "42");
  EXPECT_EQ(parsed.snapshot.counter("select.gossip_exchanges"), 123);
  EXPECT_EQ(parsed.snapshot.counter("pubsub.relay_forwards"), 7);
  ASSERT_EQ(parsed.snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.snapshot.gauges[0].value, 1000.0);
  ASSERT_EQ(parsed.snapshot.histograms.size(), 1u);
  EXPECT_EQ(parsed.snapshot.histograms[0].counts,
            report.snapshot.histograms[0].counts);
  EXPECT_DOUBLE_EQ(parsed.snapshot.histograms[0].min, 0.05);
  ASSERT_EQ(parsed.snapshot.spans.size(), 1u);
  EXPECT_EQ(parsed.snapshot.spans[0].total_ns, 5'000'000);
  ASSERT_EQ(parsed.snapshot.rounds.size(), 2u);
  EXPECT_EQ(parsed.snapshot.rounds[0].label, "select.round");
  EXPECT_DOUBLE_EQ(parsed.snapshot.rounds[0].compute_ms, 12.5);
  EXPECT_DOUBLE_EQ(parsed.snapshot.rounds[1].deliver_ms, 3.0);
  EXPECT_EQ(parsed.snapshot.rounds[1].messages, 380u);
}

TEST(ObsReport, ReportPathDerivation) {
  EXPECT_EQ(report_path_for_csv("fig5_convergence.csv"),
            "fig5_convergence.report.json");
  EXPECT_EQ(report_path_for_csv("/tmp/out/scaling.csv"),
            "/tmp/out/scaling.report.json");
  EXPECT_EQ(report_path_for_csv("noext"), "noext.report.json");
}

TEST(ObsWiring, SelectBuildPopulatesProtocolTelemetry) {
  auto& reg = MetricsRegistry::global();
  const auto before = reg.snapshot();

  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 96, /*seed=*/7);
  core::SelectSystem sys(g, core::SelectParams{}, /*seed=*/7);
  sys.build();

  const auto after = reg.snapshot();
  EXPECT_GT(after.counter("select.gossip_exchanges"),
            before.counter("select.gossip_exchanges"));
  EXPECT_GT(after.counter("select.link_establishments"),
            before.counter("select.link_establishments"));
  EXPECT_GT(after.counter("select.rounds"), before.counter("select.rounds"));
  EXPECT_GT(after.rounds.size(), before.rounds.size());
  // Every SELECT round sample carries the gossip message count and timings.
  bool saw_select_round = false;
  for (const auto& r : after.rounds) {
    if (r.label != "select.round") continue;
    saw_select_round = true;
    EXPECT_GE(r.compute_ms, 0.0);
    EXPECT_GE(r.deliver_ms, 0.0);
  }
  EXPECT_TRUE(saw_select_round);
}

TEST(ObsReport, RoundCapDropsInsteadOfGrowing) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxRounds + 5; ++i) {
    reg.add_round({"r", i, 0.0, 0.0, 0.0, 0});
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.rounds.size(), MetricsRegistry::kMaxRounds);
  EXPECT_EQ(snap.counter("obs.rounds_dropped"), 5);
}

}  // namespace
}  // namespace sel::obs
