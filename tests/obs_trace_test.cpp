// Provenance tracer, round sampler and Perfetto exporter (the tracing
// subsystem of obs/). Exercises the wired paths: a real NotificationEngine
// dissemination must reproduce its tree through the hop records, and the
// exported Chrome Trace Event JSON must be well-formed (every event carries
// ph/ts/pid/tid; flow ids pair up exactly).
#include "obs/perfetto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/profiles.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "pubsub/engine.hpp"
#include "select/protocol.hpp"

namespace sel::obs {
namespace {

using overlay::PeerId;

// The recorders are process-wide; each test starts from a clean slate.
class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProvenanceTracer::global().reset();
    ProvenanceTracer::global().set_sample_every(1);
    TraceBuffer::global().reset();
    RoundSampler::global().reset();
  }
  void TearDown() override {
    ProvenanceTracer::global().set_sample_every(0);  // env default again
    ProvenanceTracer::global().reset();
    TraceBuffer::global().reset();
    RoundSampler::global().reset();
  }
};

TEST_F(TracingTest, FirstPublishAlwaysSampled) {
  auto& tracer = ProvenanceTracer::global();
  tracer.set_sample_every(64);
  EXPECT_NE(tracer.begin_publish(1, 0, 0.0), 0u);  // publish #0 sampled
  for (std::uint64_t m = 2; m <= 64; ++m) {
    EXPECT_EQ(tracer.begin_publish(m, 0, 0.0), 0u) << "msg " << m;
  }
  EXPECT_NE(tracer.begin_publish(65, 0, 0.0), 0u);  // publish #64 sampled
  const auto snap = tracer.snapshot();
  EXPECT_EQ(snap.publishes_seen, 65);
  EXPECT_EQ(snap.publishes_sampled, 2);
  ASSERT_EQ(snap.publishes.size(), 2u);
  EXPECT_EQ(snap.publishes[0].msg, 1u);
  EXPECT_EQ(snap.publishes[1].msg, 65u);
}

TEST_F(TracingTest, TraceIdsAreUniqueAndNonZero) {
  auto& tracer = ProvenanceTracer::global();
  std::set<TraceId> ids;
  for (std::uint64_t m = 0; m < 100; ++m) {
    const TraceId id = tracer.begin_publish(m, 3, 0.0);
    ASSERT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST_F(TracingTest, HopRingOverwritesOldestPastCapacity) {
  auto& tracer = ProvenanceTracer::global();
  const TraceId trace = tracer.begin_publish(1, 0, 0.0);
  const auto n = ProvenanceTracer::kMaxHops + 10;
  for (std::size_t i = 0; i < n; ++i) {
    HopRecord hop;
    hop.trace = trace;
    hop.msg = i;  // marker for ordering
    tracer.record_hop(hop);
  }
  const auto snap = tracer.snapshot();
  EXPECT_EQ(snap.hops_recorded, static_cast<std::int64_t>(n));
  ASSERT_EQ(snap.hops.size(), ProvenanceTracer::kMaxHops);
  // Oldest-first: the 10 dropped hops are 0..9.
  EXPECT_EQ(snap.hops.front().msg, 10u);
  EXPECT_EQ(snap.hops.back().msg, n - 1);
}

TEST_F(TracingTest, TraceBufferRingCapHolds) {
  auto& buf = TraceBuffer::global();
  for (std::size_t i = 0; i < TraceBuffer::kMaxEvents + 3; ++i) {
    buf.add({"t", "compute", i, static_cast<std::int64_t>(i), 1});
  }
  const auto events = buf.events();
  EXPECT_EQ(buf.recorded(),
            static_cast<std::int64_t>(TraceBuffer::kMaxEvents + 3));
  ASSERT_EQ(events.size(), TraceBuffer::kMaxEvents);
  EXPECT_EQ(events.front().round, 3u);
  EXPECT_EQ(events.back().round, TraceBuffer::kMaxEvents + 2);
}

// The tentpole acceptance test: a traced publish's hop records reproduce
// the dissemination tree exactly — hop count, parent linkage, depths, the
// relay-node set and the delivered count all match the engine's own stats.
TEST_F(TracingTest, EngineProvenanceMatchesDisseminationTree) {
  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
  net::NetworkModel net(g.num_nodes(), 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);

  constexpr PeerId kPublisher = 0;
  const auto id = engine.publish(kPublisher, 0.0);
  engine.run_all();
  const auto& rec = engine.record(id);
  ASSERT_NE(rec.trace, 0u);

  const auto tree = ps.build_tree(kPublisher);
  const auto subs = ps.subscribers_of(kPublisher);

  const auto snap = ProvenanceTracer::global().snapshot();
  std::vector<HopRecord> hops;
  for (const auto& h : snap.hops) {
    if (h.trace == rec.trace) hops.push_back(h);
  }

  // One hop per tree edge.
  ASSERT_EQ(hops.size(), tree.node_count() - 1);

  std::unordered_set<PeerId> relay_set;
  std::size_t delivered = 0;
  for (const auto& h : hops) {
    EXPECT_EQ(tree.parent(h.to), h.from) << "hop to " << h.to;
    EXPECT_EQ(tree.depth(h.to), h.depth) << "hop to " << h.to;
    EXPECT_GE(h.arrive_s, h.send_s);
    if (h.relay) relay_set.insert(h.to);
    if (h.delivered) ++delivered;
  }

  // Relay set == forwarding non-subscribers, exactly the engine's relay
  // accounting (one forward per relay node).
  std::unordered_set<PeerId> expected_relays;
  for (const PeerId r : tree.relay_nodes(subs)) {
    if (!tree.children(r).empty()) expected_relays.insert(r);
  }
  EXPECT_EQ(relay_set, expected_relays);
  EXPECT_EQ(relay_set.size(), rec.relay_forwards);
  EXPECT_EQ(delivered, rec.delivered);
  EXPECT_EQ(delivered, rec.wanted);
}

TEST_F(TracingTest, SamplerEmitsOnePointPerProtocolRound) {
  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), 96, 7);
  core::SelectSystem sys(g, core::SelectParams{}, 7);
  sys.join_all();
  constexpr std::size_t kRounds = 12;
  for (std::size_t i = 0; i < kRounds; ++i) sys.run_round();

  const auto points = RoundSampler::global().snapshot();
  std::vector<TimeSeriesPoint> select_points;
  for (const auto& p : points) {
    if (p.label == "select.round") select_points.push_back(p);
  }
  ASSERT_EQ(select_points.size(), kRounds);
  for (std::size_t i = 1; i < select_points.size(); ++i) {
    EXPECT_EQ(select_points[i].round, select_points[i - 1].round + 1);
    EXPECT_GE(select_points[i].ts_us, select_points[i - 1].ts_us);
  }
  // Every point carries the protocol gauges.
  for (const auto& p : select_points) {
    EXPECT_TRUE(p.values.contains("id_movement"));
    EXPECT_TRUE(p.values.contains("link_changes"));
    EXPECT_TRUE(p.values.contains("exchanges"));
  }
}

TEST_F(TracingTest, SamplerDerivesDeliveryRatios) {
  auto& reg = MetricsRegistry::global();
  // Baseline sample pins the delta window to just the adds below.
  RoundSampler::global().sample("ratio.test", 0);
  reg.counter("pubsub.deliveries").add(100);
  reg.counter("pubsub.relay_forwards").add(25);
  reg.counter("pubsub.delivery_hops").add(350);
  RoundSampler::global().sample("ratio.test", 1);

  const auto points = RoundSampler::global().snapshot();
  ASSERT_EQ(points.size(), 2u);
  const auto& values = points[1].values;
  ASSERT_TRUE(values.contains("relay_ratio"));
  ASSERT_TRUE(values.contains("avg_route_hops"));
  EXPECT_DOUBLE_EQ(values.at("relay_ratio"), 0.25);
  EXPECT_DOUBLE_EQ(values.at("avg_route_hops"), 3.5);
  EXPECT_DOUBLE_EQ(values.at("pubsub.deliveries"), 100.0);
}

TEST_F(TracingTest, ReportCarriesTimeseriesThroughJson) {
  RoundSampler::global().sample("rt.series", 0, {{"id_movement", 0.5}});
  RoundSampler::global().sample("rt.series", 1, {{"id_movement", 0.0001}});

  RunReport report;
  report.experiment = "timeseries_rt";
  report.git_describe = "test";
  report.snapshot = MetricsRegistry::global().snapshot();
  report.timeseries = RoundSampler::global().snapshot();

  const auto parsed =
      RunReport::from_json(json::Value::parse(report.to_json().dump(2)));
  ASSERT_EQ(parsed.timeseries.size(), 2u);
  EXPECT_EQ(parsed.timeseries[0].label, "rt.series");
  EXPECT_EQ(parsed.timeseries[1].round, 1u);
  EXPECT_DOUBLE_EQ(parsed.timeseries[0].values.at("id_movement"), 0.5);

  // v1 documents (no timeseries section) still parse.
  auto v = report.to_json();
  v.object().erase("timeseries");
  const auto v1 = RunReport::from_json(json::Value::parse(v.dump()));
  EXPECT_TRUE(v1.timeseries.empty());
}

// Validates the exported trace the way ui.perfetto.dev would: parse it,
// require ph/ts/pid/tid on every event, dur on completes, and exact
// one-"s"-one-"f" pairing per flow id.
TEST_F(TracingTest, PerfettoExportIsWellFormed) {
  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), 200, 11);
  net::NetworkModel net(g.num_nodes(), 11);
  core::SelectSystem sys(g, core::SelectParams{}, 11, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  engine.publish(0, 0.0);
  engine.publish(1, 0.1);
  engine.run_all();

  const auto doc = json::Value::parse(build_trace_json().dump());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::unordered_map<std::int64_t, int> flow_starts;
  std::unordered_map<std::int64_t, int> flow_finishes;
  std::size_t hop_slices = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("ts"));
    ASSERT_TRUE(e.contains("pid"));
    ASSERT_TRUE(e.contains("tid"));
    ASSERT_TRUE(e.contains("name"));
    const auto& ph = e.at("ph").as_string();
    if (ph == "X") {
      ASSERT_TRUE(e.contains("dur")) << e.at("name").as_string();
      EXPECT_GE(e.at("dur").as_int64(), 0);
      if (e.at("name").as_string().starts_with("hop ")) ++hop_slices;
    } else if (ph == "s") {
      ++flow_starts[e.at("id").as_int64()];
    } else if (ph == "f") {
      ++flow_finishes[e.at("id").as_int64()];
    } else {
      EXPECT_TRUE(ph == "M" || ph == "C") << "unexpected ph " << ph;
    }
  }
  EXPECT_GT(hop_slices, 0u);
  EXPECT_EQ(flow_starts.size(), flow_finishes.size());
  EXPECT_FALSE(flow_starts.empty());
  for (const auto& [id, n] : flow_starts) {
    EXPECT_EQ(n, 1) << "flow " << id;
    EXPECT_EQ(flow_finishes[id], 1) << "flow " << id;
  }

  // Tracer accounting surfaces in the trace metadata.
  ASSERT_TRUE(doc.contains("metadata"));
  EXPECT_EQ(doc.at("metadata").at("publishes_seen").as_int64(), 2);
}

TEST_F(TracingTest, PhaseEventsLandInRoundTracks) {
  TraceBuffer::global().add({"select.round", "compute", 4, 100, 50});
  TraceBuffer::global().add({"select.round", "deliver", 4, 150, 20});
  const auto doc = build_trace_json(ProvenanceTracer::global().snapshot(),
                                    TraceBuffer::global().events(),
                                    {}, Snapshot{});
  bool saw_compute = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("name").as_string() == "compute") {
      saw_compute = true;
      EXPECT_EQ(e.at("ts").as_int64(), 100);
      EXPECT_EQ(e.at("dur").as_int64(), 50);
      EXPECT_EQ(e.at("args").at("round").as_int64(), 4);
    }
  }
  EXPECT_TRUE(saw_compute);
}

TEST(ObsJsonEdgeCases, NonFiniteDoublesSerializeAsNull) {
  json::Value v;
  v["nan"] = json::Value(std::numeric_limits<double>::quiet_NaN());
  v["inf"] = json::Value(std::numeric_limits<double>::infinity());
  v["ninf"] = json::Value(-std::numeric_limits<double>::infinity());
  v["ok"] = json::Value(1.5);
  const std::string text = v.dump();
  // Perfetto and json.loads both reject bare NaN/Infinity tokens.
  EXPECT_EQ(text.find("nan:"), std::string::npos);
  EXPECT_EQ(text.find("Infinity"), std::string::npos);
  EXPECT_EQ(text.find("NaN"), std::string::npos);

  const auto parsed = json::Value::parse(text);
  EXPECT_TRUE(parsed.at("nan").is_null());
  EXPECT_TRUE(parsed.at("inf").is_null());
  EXPECT_TRUE(parsed.at("ninf").is_null());
  EXPECT_DOUBLE_EQ(parsed.at("ok").as_double(), 1.5);
}

TEST(ObsJsonEdgeCases, ControlCharactersEscapeAndRoundTrip) {
  // Split literals: "\x01b" would otherwise munch the 'b' as a hex digit.
  const std::string raw = std::string("a\x01" "b\x1f") + "\n\t\"\\end";
  json::Value v;
  v["s"] = json::Value(raw);
  const std::string text = v.dump();
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\u001f"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  // No raw control bytes may survive in the serialized form.
  for (const char c : text) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_EQ(json::Value::parse(text).at("s").as_string(), raw);
}

TEST(ObsJsonEdgeCases, Utf8PassesThroughUnchanged) {
  const std::string raw = "héllo → wörld 🌐";
  json::Value v;
  v["s"] = json::Value(raw);
  EXPECT_EQ(json::Value::parse(v.dump()).at("s").as_string(), raw);
  // \u escapes decode to UTF-8 on parse.
  EXPECT_EQ(json::Value::parse(R"({"s": "é→"})").at("s").as_string(),
            "é→");
}

TEST(ObsTracePaths, TracePathDerivation) {
  EXPECT_EQ(trace_path_for_csv("fig5_convergence.csv"),
            "fig5_convergence.trace.json");
  EXPECT_EQ(trace_path_for_csv("results/scaling.csv"),
            "results/scaling.trace.json");
  EXPECT_EQ(trace_path_for_csv("noext"), "noext.trace.json");
}

}  // namespace
}  // namespace sel::obs
