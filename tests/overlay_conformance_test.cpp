// Overlay-conformance suite: every overlay in the registry is held to the
// same routing-concept contract (DESIGN.md §18). Registering a new overlay
// is enough to put it under this net — the suite enumerates
// OverlayRegistry::names() at instantiation time.
//
// Contract checked here:
//   - build() joins everyone: route(a, b) round-trips for friend pairs,
//     ends at the target, starts at the source, and success ⇔ kOk;
//   - neighbors() symmetry when capabilities().symmetric_neighbors;
//   - route_avoiding(): honest kUnsupported without the capability, real
//     detours (avoid set never traversed) with it;
//   - churn: routes to offline targets fail, successful routes never
//     traverse offline intermediates, maintenance_round() keeps online
//     friend pairs deliverable;
//   - same seed ⇒ identical topology and identical routes.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "common/flat_set.hpp"
#include "common/rng.hpp"
#include "graph/profiles.hpp"
#include "overlay/registry.hpp"

namespace sel::overlay {
namespace {

class OverlayConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    graph_ = graph::make_dataset_graph(graph::profile_by_name("facebook"),
                                       200, 7);
    sys_ = OverlayRegistry::instance().create(GetParam(), graph_,
                                              {.seed = 7});
    sys_->build();
  }

  /// Deterministic sample of (user, friend) lookup pairs.
  [[nodiscard]] std::vector<std::pair<PeerId, PeerId>> friend_pairs(
      std::size_t count, std::uint64_t seed) const {
    std::vector<std::pair<PeerId, PeerId>> pairs;
    Rng rng(derive_seed(seed, 0xC0F));
    while (pairs.size() < count) {
      const auto src = static_cast<PeerId>(rng.below(graph_.num_nodes()));
      const auto& friends = graph_.neighbors(src);
      if (friends.empty()) continue;
      pairs.emplace_back(src, friends[rng.below(friends.size())]);
    }
    return pairs;
  }

  graph::SocialGraph graph_;
  std::unique_ptr<Overlay> sys_;
};

TEST_P(OverlayConformance, ReportsIdentityAndSize) {
  EXPECT_EQ(sys_->name(), GetParam());
  EXPECT_EQ(&sys_->social(), &graph_);
  EXPECT_EQ(sys_->num_peers(), graph_.num_nodes());
}

TEST_P(OverlayConformance, LookupRoundTripForFriendPairs) {
  std::size_t delivered = 0;
  const auto pairs = friend_pairs(60, 1);
  for (const auto& [from, to] : pairs) {
    const RouteResult r = sys_->route(from, to);
    // Status and legacy flag must agree; kUnsupported is never a legal
    // answer for plain point-to-point routing.
    EXPECT_EQ(r.success, r.status == RouteStatus::kOk);
    EXPECT_NE(r.status, RouteStatus::kUnsupported);
    if (!r.success) continue;
    ++delivered;
    ASSERT_GE(r.path.size(), 1u);
    EXPECT_EQ(r.path.front(), from);
    EXPECT_EQ(r.path.back(), to);
  }
  // Fully-online overlays must deliver essentially all friend lookups.
  EXPECT_GE(delivered, pairs.size() * 9 / 10) << GetParam();
}

TEST_P(OverlayConformance, NeighborsAreDeduplicatedAndInRange) {
  for (PeerId p = 0; p < sys_->num_peers(); p += 7) {
    auto nb = sys_->neighbors(p);
    for (const PeerId q : nb) {
      EXPECT_LT(q, sys_->num_peers());
      EXPECT_NE(q, kInvalidPeer);
    }
    const auto before = nb.size();
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    EXPECT_EQ(nb.size(), before) << "duplicate neighbours for peer " << p;
  }
}

TEST_P(OverlayConformance, NeighborSymmetryWhereClaimed) {
  if (!sys_->capabilities().symmetric_neighbors) {
    GTEST_SKIP() << GetParam() << " does not claim symmetric neighbors";
  }
  for (PeerId p = 0; p < sys_->num_peers(); ++p) {
    for (const PeerId q : sys_->neighbors(p)) {
      const auto back = sys_->neighbors(q);
      EXPECT_NE(std::find(back.begin(), back.end(), p), back.end())
          << p << " -> " << q << " link is one-way";
    }
  }
}

TEST_P(OverlayConformance, RouteAvoidingHonorsCapabilityFlag) {
  const bool claimed = sys_->capabilities().route_avoiding;
  std::size_t checked = 0;
  for (const auto& [from, to] : friend_pairs(40, 2)) {
    const RouteResult direct = sys_->route(from, to);
    if (!direct.success || direct.path.size() <= 2) continue;
    // Ask for a detour around the first relay of the direct path.
    const FlatSet<PeerId> avoid{direct.path[1]};
    const RouteResult detour = sys_->route_avoiding(from, to, avoid);
    if (!claimed) {
      EXPECT_EQ(detour.status, RouteStatus::kUnsupported);
      EXPECT_FALSE(detour.success);
      continue;
    }
    EXPECT_NE(detour.status, RouteStatus::kUnsupported);
    if (detour.success) {
      for (const PeerId hop : detour.path) {
        EXPECT_FALSE(avoid.contains(hop))
            << GetParam() << " routed through an avoided peer";
      }
    }
    ++checked;
  }
  if (claimed) {
    EXPECT_GT(checked, 0u) << "no multi-hop path exercised route_avoiding";
  }
}

TEST_P(OverlayConformance, ChurnContractUnderMaintenance) {
  // Knock out a deterministic 20%; the overlay may mend itself.
  Rng rng(derive_seed(7, 0xDEAD));
  std::vector<bool> offline(sys_->num_peers(), false);
  for (PeerId p = 0; p < sys_->num_peers(); ++p) {
    if (rng.chance(0.2)) {
      offline[p] = true;
      sys_->set_peer_online(p, false);
    }
  }
  for (int round = 0; round < 3; ++round) sys_->maintenance_round();

  std::size_t attempted = 0;
  std::size_t delivered = 0;
  for (const auto& [from, to] : friend_pairs(80, 3)) {
    if (offline[from]) continue;  // source liveness is the caller's problem
    const RouteResult r = sys_->route(from, to);
    if (offline[to]) {
      // Routing to an offline peer must fail honestly.
      EXPECT_FALSE(r.success) << GetParam() << " delivered to offline peer";
      continue;
    }
    ++attempted;
    if (!r.success) continue;
    ++delivered;
    // Offline peers must never appear as intermediates.
    for (std::size_t i = 1; i + 1 < r.path.size(); ++i) {
      EXPECT_FALSE(offline[r.path[i]])
          << GetParam() << " relayed through offline peer " << r.path[i];
    }
  }
  // After maintenance, online friend pairs stay overwhelmingly deliverable.
  EXPECT_GE(delivered, attempted * 3 / 4) << GetParam();

  // Recovery: bring everyone back; lookups must recover too.
  for (PeerId p = 0; p < sys_->num_peers(); ++p) {
    sys_->set_peer_online(p, true);
  }
  for (int round = 0; round < 3; ++round) sys_->maintenance_round();
  std::size_t recovered = 0;
  const auto pairs = friend_pairs(40, 4);
  for (const auto& [from, to] : pairs) {
    if (sys_->route(from, to).success) ++recovered;
  }
  EXPECT_GE(recovered, pairs.size() * 9 / 10) << GetParam();
}

TEST_P(OverlayConformance, SameSeedSameTopologySameRoutes) {
  auto twin = OverlayRegistry::instance().create(GetParam(), graph_,
                                                 {.seed = 7});
  twin->build();
  EXPECT_EQ(sys_->build_iterations(), twin->build_iterations());
  for (PeerId p = 0; p < sys_->num_peers(); p += 5) {
    EXPECT_EQ(sys_->neighbors(p), twin->neighbors(p)) << "peer " << p;
  }
  for (const auto& [from, to] : friend_pairs(40, 5)) {
    const RouteResult a = sys_->route(from, to);
    const RouteResult b = twin->route(from, to);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.path, b.path);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, OverlayConformance,
    ::testing::ValuesIn(OverlayRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      // gtest parameter names must be alphanumeric.
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
      return name;
    });

}  // namespace
}  // namespace sel::overlay
