#include "overlay/lookahead.hpp"

#include <gtest/gtest.h>

#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

namespace sel::overlay {
namespace {

RingSubstrate ring_of(std::size_t n) {
  RingSubstrate ov(n);
  for (PeerId p = 0; p < n; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / static_cast<double>(n)));
  }
  ov.rebuild_ring();
  return ov;
}

TEST(LookaheadCache, StartsUnknown) {
  RingSubstrate ov = ring_of(8);
  LookaheadCache cache(ov);
  EXPECT_EQ(cache.num_snapshots(), 0u);
  EXPECT_FALSE(cache.has_snapshot(0));
  EXPECT_FALSE(cache.cached_contains(0, 1));  // no claim without knowledge
}

TEST(LookaheadCache, RefreshSnapshotsNeighbors) {
  RingSubstrate ov = ring_of(8);
  ov.add_long_link(0, 4);
  LookaheadCache cache(ov);
  cache.refresh(0);
  EXPECT_TRUE(cache.has_snapshot(0));
  EXPECT_TRUE(cache.cached_contains(0, 1));   // succ
  EXPECT_TRUE(cache.cached_contains(0, 7));   // pred
  EXPECT_TRUE(cache.cached_contains(0, 4));   // long link
  EXPECT_FALSE(cache.cached_contains(0, 3));
}

TEST(LookaheadCache, SnapshotsGoStale) {
  RingSubstrate ov = ring_of(8);
  ov.add_long_link(0, 4);
  LookaheadCache cache(ov);
  cache.refresh(0);
  EXPECT_EQ(cache.stale_entries(0), 0u);
  ov.remove_long_link(0, 4);
  ov.add_long_link(0, 5);
  // Snapshot still claims 4, misses 5.
  EXPECT_TRUE(cache.cached_contains(0, 4));
  EXPECT_FALSE(cache.cached_contains(0, 5));
  EXPECT_EQ(cache.stale_entries(0), 2u);
  cache.refresh(0);
  EXPECT_EQ(cache.stale_entries(0), 0u);
  EXPECT_TRUE(cache.cached_contains(0, 5));
}

TEST(LookaheadCache, RefreshAllCoversEveryPeer) {
  RingSubstrate ov = ring_of(16);
  LookaheadCache cache(ov);
  cache.refresh_all();
  EXPECT_EQ(cache.num_snapshots(), 16u);
}

TEST(LookaheadCache, CachedRoutingUsesSnapshot) {
  RingSubstrate ov = ring_of(64);
  ov.add_long_link(63, 32);
  LookaheadCache cache(ov);
  cache.refresh_all();
  RouteOptions opts;
  opts.lookahead_cache = &cache;
  const auto r = ov.greedy_route(0, 32, opts);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 2u);  // via 63, from the snapshot
}

TEST(LookaheadCache, StaleShortcutDegradesGracefully) {
  RingSubstrate ov = ring_of(64);
  ov.add_long_link(63, 32);
  LookaheadCache cache(ov);
  cache.refresh_all();
  ov.remove_long_link(63, 32);  // snapshot now stale
  RouteOptions opts;
  opts.lookahead_cache = &cache;
  const auto r = ov.greedy_route(0, 32, opts);
  // The stale claim sends the message to 63, which no longer has the link;
  // routing continues greedily and still succeeds, just longer.
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.hops(), 2u);
}

TEST(LookaheadCache, EmptyCacheFallsBackToGreedy) {
  RingSubstrate ov = ring_of(32);
  LookaheadCache cache(ov);  // never refreshed
  RouteOptions opts;
  opts.lookahead_cache = &cache;
  const auto r = ov.greedy_route(0, 16, opts);
  EXPECT_TRUE(r.success);  // plain ring walk
}

TEST(SelectLookahead, CachePopulatedByGossip) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 3);
  core::SelectSystem sys(g, core::SelectParams{}, 3);
  sys.join_all();
  EXPECT_EQ(sys.lookahead().num_snapshots(), 0u);
  sys.run_round();
  EXPECT_GT(sys.lookahead().num_snapshots(), 250u);
}

TEST(SelectLookahead, RoutingStaysReliableWithCachedLookahead) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 400, 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 300, 5);
  EXPECT_DOUBLE_EQ(hops.success_rate(), 1.0);
  EXPECT_LT(hops.hops.mean(), 3.0);
}

}  // namespace
}  // namespace sel::overlay
