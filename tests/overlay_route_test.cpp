#include <gtest/gtest.h>

#include "overlay/overlay.hpp"

namespace sel::overlay {
namespace {

RingSubstrate ring_of(std::size_t n) {
  RingSubstrate ov(n);
  for (PeerId p = 0; p < n; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / static_cast<double>(n)));
  }
  ov.rebuild_ring();
  return ov;
}

TEST(GreedyRoute, SelfRouteIsZeroHops) {
  RingSubstrate ov = ring_of(8);
  const auto r = ov.greedy_route(3, 3);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 0u);
  EXPECT_EQ(r.path, std::vector<PeerId>{3});
}

TEST(GreedyRoute, AdjacentPeerIsOneHop) {
  RingSubstrate ov = ring_of(8);
  const auto r = ov.greedy_route(3, 4);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 1u);
}

TEST(GreedyRoute, RingWalkReachesAnyPeer) {
  RingSubstrate ov = ring_of(16);
  for (PeerId dst = 0; dst < 16; ++dst) {
    const auto r = ov.greedy_route(0, dst);
    EXPECT_TRUE(r.success) << "dst=" << dst;
    EXPECT_EQ(r.path.front(), 0u);
    EXPECT_EQ(r.path.back(), dst);
  }
}

TEST(GreedyRoute, TakesShorterArcDirection) {
  RingSubstrate ov = ring_of(16);
  // 0 -> 15 is one hop counterclockwise (pred), not 15 hops clockwise.
  const auto r = ov.greedy_route(0, 15);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 1u);
}

TEST(GreedyRoute, LongLinksShortenPaths) {
  RingSubstrate plain = ring_of(64);
  const auto slow = plain.greedy_route(0, 32);
  RingSubstrate fast = ring_of(64);
  fast.add_long_link(0, 30);
  const auto quick = fast.greedy_route(0, 32);
  EXPECT_TRUE(slow.success);
  EXPECT_TRUE(quick.success);
  EXPECT_LT(quick.hops(), slow.hops());
}

TEST(GreedyRoute, LookaheadFindsTwoHopShortcut) {
  RingSubstrate ov = ring_of(64);
  // The shortcut holder (63) lies AWAY from the greedy direction toward 32,
  // so only lookahead discovers it.
  ov.add_long_link(63, 32);
  RouteOptions with;
  with.lookahead = true;
  const auto r = ov.greedy_route(0, 32, with);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 2u);
  EXPECT_EQ(r.path[1], 63u);
}

TEST(GreedyRoute, NoLookaheadIsSlower) {
  RingSubstrate ov = ring_of(64);
  ov.add_long_link(63, 32);
  RouteOptions without;
  without.lookahead = false;
  const auto r = ov.greedy_route(0, 32, without);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.hops(), 4u);  // greedy walks the ring instead
}

TEST(GreedyRoute, SkipsOfflinePeers) {
  RingSubstrate ov = ring_of(8);
  ov.add_long_link(0, 4);
  ov.set_online(4, false);
  // Target 4 offline: route fails (destination unusable).
  const auto r = ov.greedy_route(0, 4);
  EXPECT_FALSE(r.success);
}

TEST(GreedyRoute, RoutesAroundOfflineRelay) {
  RingSubstrate ov = ring_of(8);
  ov.set_online(1, false);
  ov.set_online(7, false);
  // Both ring directions from 0 are blocked at the first hop... except
  // detours through 2..6 do not exist from 0 (only succ/pred). The route
  // must fail cleanly rather than loop.
  const auto blocked = ov.greedy_route(0, 4);
  EXPECT_FALSE(blocked.success);
  // A long link restores connectivity.
  ov.add_long_link(0, 3);
  const auto r = ov.greedy_route(0, 4);
  EXPECT_TRUE(r.success);
}

TEST(GreedyRoute, OfflineRouteIgnoredWhenNotRequired) {
  RingSubstrate ov = ring_of(8);
  ov.set_online(1, false);
  RouteOptions opts;
  opts.require_online = false;
  const auto r = ov.greedy_route(0, 2, opts);
  EXPECT_TRUE(r.success);
}

TEST(GreedyRoute, TtlBoundsPathLength) {
  RingSubstrate ov = ring_of(128);
  RouteOptions opts;
  opts.max_hops = 3;
  const auto r = ov.greedy_route(0, 64, opts);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.path.size(), 4u);
}

TEST(GreedyRoute, UnjoinedEndpointsFail) {
  RingSubstrate ov(4);
  ov.join(0, net::OverlayId(0.0));
  ov.rebuild_ring();
  EXPECT_FALSE(ov.greedy_route(0, 2).success);
  EXPECT_FALSE(ov.greedy_route(2, 0).success);
}

TEST(GreedyRoute, ClusteredIdsStillRoute) {
  // All peers share nearly identical ids (SELECT's clustered communities);
  // the clockwise tiebreak must still find the target.
  RingSubstrate ov(10);
  for (PeerId p = 0; p < 10; ++p) {
    ov.join(p, net::OverlayId(0.5 + 1e-9 * static_cast<double>(p)));
  }
  ov.rebuild_ring();
  for (PeerId dst = 0; dst < 10; ++dst) {
    EXPECT_TRUE(ov.greedy_route(0, dst).success) << "dst=" << dst;
  }
}

TEST(GreedyRoute, PathHasNoDuplicates) {
  RingSubstrate ov = ring_of(64);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<PeerId>(rng.below(64));
    const auto b = static_cast<PeerId>(rng.below(64));
    const auto r = ov.greedy_route(a, b);
    ASSERT_TRUE(r.success);
    auto sorted = r.path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(GreedyRoute, ConsecutivePathNodesAreNeighbors) {
  RingSubstrate ov = ring_of(32);
  ov.add_long_link(0, 11);
  ov.add_long_link(11, 22);
  const auto r = ov.greedy_route(0, 22);
  ASSERT_TRUE(r.success);
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    EXPECT_TRUE(ov.neighbors_of_contains(r.path[i - 1], r.path[i]));
  }
}

}  // namespace
}  // namespace sel::overlay
