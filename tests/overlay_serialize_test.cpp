#include "overlay/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/profiles.hpp"
#include "select/protocol.hpp"

namespace sel::overlay {
namespace {

RingSubstrate sample_overlay() {
  RingSubstrate ov(6);
  ov.join(0, net::OverlayId(0.1));
  ov.join(1, net::OverlayId(0.3));
  ov.join(3, net::OverlayId(0.7));  // 2 never joins
  ov.join(5, net::OverlayId(0.9));
  ov.set_online(1, false);
  ov.rebuild_ring();
  ov.add_long_link(0, 3);
  ov.add_long_link(5, 1);
  return ov;
}

TEST(OverlaySerialize, RoundTripPreservesEverything) {
  const RingSubstrate original = sample_overlay();
  std::stringstream buffer;
  ASSERT_TRUE(save_overlay(original, buffer));
  const auto loaded = load_overlay(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_peers(), original.num_peers());
  EXPECT_EQ(loaded->joined_count(), original.joined_count());
  for (PeerId p = 0; p < original.num_peers(); ++p) {
    ASSERT_EQ(loaded->joined(p), original.joined(p));
    if (!original.joined(p)) continue;
    EXPECT_DOUBLE_EQ(loaded->id(p).value(), original.id(p).value());
    EXPECT_EQ(loaded->online(p), original.online(p));
    EXPECT_EQ(loaded->successor(p), original.successor(p));
    const auto a = loaded->out_links(p);
    const auto b = original.out_links(p);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(OverlaySerialize, RejectsWrongMagic) {
  std::stringstream buffer("wrongformat v1 4\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsWrongVersion) {
  std::stringstream buffer("selectov v9 4\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsOutOfRangePeer) {
  std::stringstream buffer("selectov v1 4\nP 9 0.5 1\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsOutOfRangeId) {
  std::stringstream buffer("selectov v1 4\nP 1 1.5 1\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsLinkToUnjoinedPeer) {
  std::stringstream buffer("selectov v1 4\nP 0 0.5 1\nL 0 2\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsUnknownRecord) {
  std::stringstream buffer("selectov v1 4\nX what\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, RejectsTruncated) {
  std::stringstream buffer("selectov v1 4\nP 0 0.5\n");
  EXPECT_FALSE(load_overlay(buffer).has_value());
}

TEST(OverlaySerialize, EmptyOverlayRoundTrips) {
  RingSubstrate ov(0);
  std::stringstream buffer;
  ASSERT_TRUE(save_overlay(ov, buffer));
  const auto loaded = load_overlay(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_peers(), 0u);
}

TEST(OverlaySerialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/select_overlay_test.ov";
  const RingSubstrate original = sample_overlay();
  ASSERT_TRUE(save_overlay_file(original, path));
  const auto loaded = load_overlay_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->joined_count(), original.joined_count());
  std::remove(path.c_str());
}

TEST(OverlaySerialize, MissingFileFails) {
  EXPECT_FALSE(load_overlay_file("/no/such/overlay.ov").has_value());
}

TEST(OverlaySerialize, BuiltSelectOverlayRoundTripsAndRoutes) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 7);
  core::SelectSystem sys(g, core::SelectParams{}, 7);
  sys.build();
  std::stringstream buffer;
  ASSERT_TRUE(save_overlay(sys.overlay(), buffer));
  const auto loaded = load_overlay(buffer);
  ASSERT_TRUE(loaded.has_value());
  // The reloaded overlay routes exactly like the original (live lookahead).
  RouteOptions opts;  // no cache on the reloaded side
  for (PeerId p = 0; p < 30; ++p) {
    const auto nbrs = g.neighbors(p);
    if (nbrs.empty()) continue;
    const auto r = loaded->greedy_route(p, nbrs[0], opts);
    EXPECT_TRUE(r.success) << p;
  }
}

}  // namespace
}  // namespace sel::overlay
