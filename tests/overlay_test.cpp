#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sel::overlay {
namespace {

RingSubstrate ring_of(std::size_t n) {
  RingSubstrate ov(n);
  for (PeerId p = 0; p < n; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / static_cast<double>(n)));
  }
  ov.rebuild_ring();
  return ov;
}

TEST(RingSubstrate, JoinTracksCountAndState) {
  RingSubstrate ov(5);
  EXPECT_EQ(ov.joined_count(), 0u);
  ov.join(2, net::OverlayId(0.5));
  EXPECT_TRUE(ov.joined(2));
  EXPECT_FALSE(ov.joined(0));
  EXPECT_EQ(ov.joined_count(), 1u);
  EXPECT_DOUBLE_EQ(ov.id(2).value(), 0.5);
  ov.join(2, net::OverlayId(0.6));  // rejoin updates id, not count
  EXPECT_EQ(ov.joined_count(), 1u);
  EXPECT_DOUBLE_EQ(ov.id(2).value(), 0.6);
}

TEST(RingSubstrate, OnlineFlagToggles) {
  RingSubstrate ov(3);
  ov.join(0, net::OverlayId(0.1));
  EXPECT_TRUE(ov.online(0));
  ov.set_online(0, false);
  EXPECT_FALSE(ov.online(0));
}

TEST(RingSubstrate, RingFollowsIdOrder) {
  RingSubstrate ov(4);
  ov.join(0, net::OverlayId(0.8));
  ov.join(1, net::OverlayId(0.2));
  ov.join(2, net::OverlayId(0.5));
  ov.join(3, net::OverlayId(0.9));
  ov.rebuild_ring();
  // Sorted: 1(0.2) -> 2(0.5) -> 0(0.8) -> 3(0.9) -> wraps to 1.
  EXPECT_EQ(ov.successor(1), 2u);
  EXPECT_EQ(ov.successor(2), 0u);
  EXPECT_EQ(ov.successor(0), 3u);
  EXPECT_EQ(ov.successor(3), 1u);
  EXPECT_EQ(ov.predecessor(1), 3u);
  EXPECT_EQ(ov.predecessor(3), 0u);
}

TEST(RingSubstrate, RingWithSinglePeer) {
  RingSubstrate ov(3);
  ov.join(1, net::OverlayId(0.4));
  ov.rebuild_ring();
  EXPECT_EQ(ov.successor(1), kInvalidPeer);
  EXPECT_EQ(ov.predecessor(1), kInvalidPeer);
}

TEST(RingSubstrate, OnlineOnlyRingSkipsOffline) {
  RingSubstrate ov = ring_of(5);
  ov.set_online(2, false);
  ov.rebuild_ring(/*online_only=*/true);
  EXPECT_EQ(ov.successor(1), 3u);  // skips 2
  EXPECT_EQ(ov.predecessor(3), 1u);
  EXPECT_EQ(ov.successor(2), kInvalidPeer);
  EXPECT_EQ(ov.predecessor(2), kInvalidPeer);
}

TEST(RingSubstrate, EqualIdsBreakTiesByPeer) {
  RingSubstrate ov(3);
  ov.join(0, net::OverlayId(0.5));
  ov.join(1, net::OverlayId(0.5));
  ov.join(2, net::OverlayId(0.5));
  ov.rebuild_ring();
  EXPECT_EQ(ov.successor(0), 1u);
  EXPECT_EQ(ov.successor(1), 2u);
  EXPECT_EQ(ov.successor(2), 0u);
}

TEST(RingSubstrate, AddLongLinkMaintainsBothDirections) {
  RingSubstrate ov = ring_of(4);
  EXPECT_TRUE(ov.add_long_link(0, 2));
  EXPECT_EQ(ov.out_degree(0), 1u);
  EXPECT_EQ(ov.in_degree(2), 1u);
  EXPECT_TRUE(ov.linked(0, 2));
  EXPECT_TRUE(ov.linked(2, 0));  // TCP is bidirectional
}

TEST(RingSubstrate, AddLongLinkRejectsDuplicatesAndSelf) {
  RingSubstrate ov = ring_of(4);
  EXPECT_TRUE(ov.add_long_link(0, 2));
  EXPECT_FALSE(ov.add_long_link(0, 2));
  EXPECT_FALSE(ov.add_long_link(1, 1));
}

TEST(RingSubstrate, AddLongLinkRequiresJoinedEnds) {
  RingSubstrate ov(4);
  ov.join(0, net::OverlayId(0.1));
  EXPECT_FALSE(ov.add_long_link(0, 1));  // 1 not joined
  EXPECT_FALSE(ov.add_long_link(1, 0));
}

TEST(RingSubstrate, RemoveLongLinkCleansBothSides) {
  RingSubstrate ov = ring_of(4);
  ov.add_long_link(0, 2);
  EXPECT_TRUE(ov.remove_long_link(0, 2));
  EXPECT_EQ(ov.out_degree(0), 0u);
  EXPECT_EQ(ov.in_degree(2), 0u);
  EXPECT_FALSE(ov.remove_long_link(0, 2));  // already gone
}

TEST(RingSubstrate, ClearLongLinksDropsBothDirections) {
  RingSubstrate ov = ring_of(5);
  ov.add_long_link(0, 2);
  ov.add_long_link(0, 3);
  ov.add_long_link(4, 0);
  ov.clear_long_links(0);
  EXPECT_EQ(ov.out_degree(0), 0u);
  EXPECT_EQ(ov.in_degree(0), 0u);
  EXPECT_EQ(ov.out_degree(4), 0u);
  EXPECT_EQ(ov.in_degree(2), 0u);
}

TEST(RingSubstrate, NeighborListDeduplicatesAndIncludesRing) {
  RingSubstrate ov = ring_of(5);
  ov.add_long_link(0, 1);  // 1 is also succ of 0
  ov.add_long_link(0, 3);
  ov.add_long_link(2, 0);  // incoming
  const auto nbrs = ov.neighbor_list(0);
  // succ=1, pred=4, out={1,3}, in={2} -> {1,4,3,2}
  EXPECT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(std::count(nbrs.begin(), nbrs.end(), 1u), 1);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), 4u), nbrs.end());
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), 3u), nbrs.end());
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), 2u), nbrs.end());
}

TEST(RingSubstrate, NeighborsOfContainsChecksRingAndLinks) {
  RingSubstrate ov = ring_of(6);
  EXPECT_TRUE(ov.neighbors_of_contains(0, 1));   // succ
  EXPECT_TRUE(ov.neighbors_of_contains(0, 5));   // pred
  EXPECT_FALSE(ov.neighbors_of_contains(0, 3));
  ov.add_long_link(3, 0);
  EXPECT_TRUE(ov.neighbors_of_contains(0, 3));  // incoming counts
}

TEST(RingSubstrate, AverageLongDegree) {
  RingSubstrate ov = ring_of(4);
  ov.add_long_link(0, 2);
  ov.add_long_link(1, 3);
  EXPECT_DOUBLE_EQ(ov.average_long_degree(), 0.5);
}

TEST(RingSubstrate, InOutLinkSymmetryInvariant) {
  // After arbitrary add/remove sequences, out-links and in-links remain
  // mirror images.
  RingSubstrate ov = ring_of(10);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<PeerId>(rng.below(10));
    const auto b = static_cast<PeerId>(rng.below(10));
    if (rng.chance(0.6)) {
      ov.add_long_link(a, b);
    } else {
      ov.remove_long_link(a, b);
    }
  }
  for (PeerId p = 0; p < 10; ++p) {
    for (const PeerId q : ov.out_links(p)) {
      const auto ins = ov.in_links(q);
      EXPECT_NE(std::find(ins.begin(), ins.end(), p), ins.end());
    }
    for (const PeerId q : ov.in_links(p)) {
      const auto outs = ov.out_links(q);
      EXPECT_NE(std::find(outs.begin(), outs.end(), p), outs.end());
    }
  }
}

}  // namespace
}  // namespace sel::overlay
