#include "overlay/tree.hpp"

#include <gtest/gtest.h>

#include "common/flat_set.hpp"
#include "overlay/system.hpp"

namespace sel::overlay {
namespace {

/// Minimal Overlay over a bare RingSubstrate (isolated social graph): the
/// subscriber-first builder only needs routing, liveness and neighbours.
class BareRingOverlay final : public RingOverlay {
 public:
  explicit BareRingOverlay(std::size_t n)
      : BareRingOverlay(std::make_unique<graph::SocialGraph>(
            graph::GraphBuilder(n).build())) {}
  [[nodiscard]] std::string_view name() const override { return "bare-ring"; }
  void build() override {}

 private:
  explicit BareRingOverlay(std::unique_ptr<graph::SocialGraph> g)
      : RingOverlay(*g, RouteOptions{}), owned_graph_(std::move(g)) {}
  std::unique_ptr<graph::SocialGraph> owned_graph_;
};

TEST(DisseminationTree, StartsWithRootOnly) {
  DisseminationTree t(5);
  EXPECT_EQ(t.root(), 5u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.contains(5));
  EXPECT_FALSE(t.contains(0));
  EXPECT_EQ(t.parent(5), kInvalidPeer);
}

TEST(DisseminationTree, AddPathBuildsChain) {
  DisseminationTree t(0);
  const std::vector<PeerId> path{0, 1, 2, 3};
  t.add_path(path);
  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 1u);
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_EQ(t.depth(3), 3u);
}

TEST(DisseminationTree, MergingPathsKeepsFirstParent) {
  DisseminationTree t(0);
  t.add_path(std::vector<PeerId>{0, 1, 2});
  t.add_path(std::vector<PeerId>{0, 3, 2, 4});  // 2 already has parent 1
  EXPECT_EQ(t.parent(2), 1u);  // unchanged
  EXPECT_EQ(t.parent(4), 2u);  // new suffix attaches
  EXPECT_EQ(t.node_count(), 5u);
}

TEST(DisseminationTree, EmptyPathIsNoop) {
  DisseminationTree t(0);
  t.add_path(std::span<const PeerId>{});
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(DisseminationTree, ChildrenAndForwardCounts) {
  DisseminationTree t(0);
  t.add_path(std::vector<PeerId>{0, 1});
  t.add_path(std::vector<PeerId>{0, 2});
  t.add_path(std::vector<PeerId>{0, 1, 3});
  EXPECT_EQ(t.forward_count(0), 2u);
  EXPECT_EQ(t.forward_count(1), 1u);
  EXPECT_EQ(t.forward_count(3), 0u);
  EXPECT_EQ(t.children(0).size(), 2u);
}

TEST(DisseminationTree, AddChildAttaches) {
  DisseminationTree t(0);
  t.add_child(0, 7);
  t.add_child(7, 9);
  EXPECT_EQ(t.parent(9), 7u);
  EXPECT_EQ(t.depth(9), 2u);
  t.add_child(0, 9);  // already present: no-op
  EXPECT_EQ(t.parent(9), 7u);
}

TEST(DisseminationTree, NodesOrderParentsBeforeChildren) {
  DisseminationTree t(0);
  t.add_path(std::vector<PeerId>{0, 4, 2});
  t.add_path(std::vector<PeerId>{0, 1, 3});
  const auto& order = t.nodes();
  ASSERT_EQ(order.front(), 0u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const PeerId parent = t.parent(order[i]);
    const auto parent_pos =
        std::find(order.begin(), order.end(), parent) - order.begin();
    EXPECT_LT(static_cast<std::size_t>(parent_pos), i);
  }
}

TEST(DisseminationTree, DepthOfMissingNodeIsMax) {
  DisseminationTree t(0);
  EXPECT_EQ(t.depth(3), static_cast<std::size_t>(-1));
}

TEST(DisseminationTree, RelayNodesExcludesRootAndSubscribers) {
  DisseminationTree t(0);
  t.add_path(std::vector<PeerId>{0, 9, 1});  // 9 is a relay
  t.add_path(std::vector<PeerId>{0, 2});
  const FlatSet<PeerId> subs{1, 2};
  const auto relays = t.relay_nodes(subs);
  ASSERT_EQ(relays.size(), 1u);
  EXPECT_EQ(relays[0], 9u);
}

TEST(DisseminationTree, SubscriberRelaysNotCounted) {
  // A subscriber that forwards is not a relay node (paper Sec. II-B).
  DisseminationTree t(0);
  t.add_path(std::vector<PeerId>{0, 1, 2});  // 1 forwards to 2, both subs
  const FlatSet<PeerId> subs{1, 2};
  EXPECT_TRUE(t.relay_nodes(subs).empty());
}

TEST(SubscriberFirstTree, ZeroRelaysOnConnectedSubscribers) {
  // 0 (publisher) -- 1 -- 2 chain of subscriber links.
  BareRingOverlay sys(4);
  RingSubstrate& ov = sys.overlay();
  for (PeerId p = 0; p < 4; ++p) ov.join(p, net::OverlayId(p * 0.25));
  ov.rebuild_ring();
  ov.add_long_link(0, 1);
  ov.add_long_link(1, 2);
  const FlatSet<PeerId> subs{1, 2};
  const auto tree = subscriber_first_tree(sys, subs, 0);
  EXPECT_TRUE(tree.contains(1));
  EXPECT_TRUE(tree.contains(2));
  EXPECT_TRUE(tree.relay_nodes(subs).empty());
}

TEST(SubscriberFirstTree, TwoHopAttachUsesSingleRelay) {
  // Subscriber 3 is only reachable via non-subscriber 2: 0 -- 2 -- 3.
  BareRingOverlay sys(5);
  RingSubstrate& ov = sys.overlay();
  for (PeerId p = 0; p < 5; ++p) ov.join(p, net::OverlayId(p * 0.19));
  ov.rebuild_ring();
  // Disconnect ring effects by using far ids? ring links exist; subscriber
  // 3's ring neighbours include 2 and 4 (non-subscribers), so phase 1 can't
  // reach it; phase 2 attaches through one of them.
  const FlatSet<PeerId> subs{3};
  const auto tree = subscriber_first_tree(sys, subs, 0);
  EXPECT_TRUE(tree.contains(3));
  const auto relays = tree.relay_nodes(subs);
  EXPECT_LE(relays.size(), 1u);
}

TEST(SubscriberFirstTree, SkipsOfflineSubscribers) {
  BareRingOverlay sys(3);
  RingSubstrate& ov = sys.overlay();
  for (PeerId p = 0; p < 3; ++p) ov.join(p, net::OverlayId(p * 0.3));
  ov.rebuild_ring();
  ov.add_long_link(0, 1);
  ov.set_online(1, false);
  const FlatSet<PeerId> subs{1};
  const auto tree = subscriber_first_tree(sys, subs, 0);
  EXPECT_FALSE(tree.contains(1));
}

}  // namespace
}  // namespace sel::overlay
