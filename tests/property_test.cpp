// Property sweeps (TEST_P) over dataset profile x network size x seed:
// protocol invariants that must hold for every configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/factory.hpp"
#include "graph/profiles.hpp"
#include "overlay/system.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

namespace sel {
namespace {

using overlay::PeerId;

using Config = std::tuple<const char*, std::size_t, std::uint64_t>;

class SelectInvariants : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const auto& [profile, n, seed] = GetParam();
    graph_ = graph::make_dataset_graph(graph::profile_by_name(profile), n,
                                       seed);
    sys_ = std::make_unique<core::SelectSystem>(graph_, core::SelectParams{},
                                                seed);
    sys_->build();
  }

  graph::SocialGraph graph_;
  std::unique_ptr<core::SelectSystem> sys_;
};

TEST_P(SelectInvariants, DegreeBudgetsHold) {
  for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
    EXPECT_LE(sys_->overlay().out_degree(p), sys_->k());
    EXPECT_LE(sys_->overlay().in_degree(p), sys_->k());
  }
}

TEST_P(SelectInvariants, LinksAreAlwaysSocial) {
  for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
    for (const PeerId q : sys_->overlay().out_links(p)) {
      ASSERT_TRUE(graph_.has_edge(p, q));
    }
  }
}

TEST_P(SelectInvariants, LinkSymmetryHolds) {
  for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
    for (const PeerId q : sys_->overlay().out_links(p)) {
      const auto ins = sys_->overlay().in_links(q);
      ASSERT_NE(std::find(ins.begin(), ins.end(), p), ins.end());
    }
  }
}

TEST_P(SelectInvariants, AllSocialLookupsDeliver) {
  const auto hops = pubsub::measure_hops(overlay::PubSubSystem(*sys_), 150, 99);
  EXPECT_DOUBLE_EQ(hops.success_rate(), 1.0);
  EXPECT_LT(hops.hops.mean(), 4.0);
}

TEST_P(SelectInvariants, TreesCoverSubscribers) {
  std::vector<PeerId> publishers;
  for (std::size_t i = 0; i < 8; ++i) {
    publishers.push_back(
        static_cast<PeerId>(i * 41 % graph_.num_nodes()));
  }
  const auto relays = pubsub::measure_relays(overlay::PubSubSystem(*sys_), publishers);
  EXPECT_GT(relays.coverage.mean(), 0.98);
}

TEST_P(SelectInvariants, InvariantsSurviveChurnAndRecovery) {
  Rng rng(1234);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
      if (rng.chance(0.2)) sys_->set_peer_online(p, false);
    }
    sys_->maintenance_round();
    for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
      ASSERT_LE(sys_->overlay().out_degree(p), sys_->k());
      for (const PeerId q : sys_->overlay().out_links(p)) {
        ASSERT_TRUE(graph_.has_edge(p, q));
      }
    }
    for (PeerId p = 0; p < graph_.num_nodes(); ++p) {
      sys_->set_peer_online(p, true);
    }
    sys_->maintenance_round();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesSizesSeeds, SelectInvariants,
    ::testing::Values(Config{"facebook", 200, 1}, Config{"facebook", 450, 2},
                      Config{"twitter", 300, 3}, Config{"slashdot", 350, 4},
                      Config{"gplus", 250, 5}, Config{"slashdot", 200, 6}));

class BaselineInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(BaselineInvariants, BuildRouteAndChurnHooks) {
  const auto& [name, seed] = GetParam();
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, seed);
  auto sys = baselines::make_system(name, g, {.seed = seed});
  sys->build();
  const auto hops = pubsub::measure_hops(*sys, 100, seed);
  EXPECT_GT(hops.success_rate(), 0.9) << name;
  // Churn hooks must be consistent.
  sys->set_peer_online(3, false);
  EXPECT_FALSE(sys->peer_online(3));
  sys->set_peer_online(3, true);
  EXPECT_TRUE(sys->peer_online(3));
  sys->maintenance_round();  // must not crash for any system
}

INSTANTIATE_TEST_SUITE_P(
    Systems, BaselineInvariants,
    ::testing::Combine(::testing::Values("select", "symphony", "bayeux",
                                         "vitis", "omen", "random"),
                       ::testing::Values(1ULL, 2ULL)));

}  // namespace
}  // namespace sel
