// The NotificationEngine is system-agnostic: it must run unchanged over
// every PubSubSystem, and its relative results must mirror the static
// metrics (SELECT beats Bayeux on relay traffic, etc.).
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "graph/profiles.hpp"
#include "pubsub/engine.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

class EngineOverSystem : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineOverSystem, DeliversThroughAnySystem) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 250, 41);
  net::NetworkModel net(g.num_nodes(), 41);
  auto sys = baselines::make_system(GetParam(), g, {.seed = 41, .net = &net});
  sys->build();
  NotificationEngine engine(*sys, net);
  for (PeerId p = 0; p < 5; ++p) engine.publish(p, 0.0);
  engine.run_all();
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.messages_published, 5u);
  EXPECT_GT(stats.delivery_rate(), 0.95) << GetParam();
  EXPECT_GT(stats.delivery_latency_s.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, EngineOverSystem,
                         ::testing::Values("select", "symphony", "bayeux",
                                           "vitis", "omen", "random"));

TEST(EngineComparison, SelectGeneratesLessRelayTrafficThanBayeux) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 43);
  net::NetworkModel net(g.num_nodes(), 43);
  auto run = [&](const char* name) {
    auto sys = baselines::make_system(name, g, {.seed = 43, .net = &net});
    sys->build();
    NotificationEngine engine(*sys, net);
    for (PeerId p = 0; p < 10; ++p) engine.publish(p * 7, 0.0);
    engine.run_all();
    const auto& s = engine.stats();
    return static_cast<double>(s.relay_forwards) /
           static_cast<double>(std::max<std::size_t>(s.deliveries, 1));
  };
  EXPECT_LT(run("select"), run("bayeux"));
}

TEST(EngineComparison, SelectCompletesTreesFasterThanRandom) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 250, 47);
  net::NetworkModel net(g.num_nodes(), 47);
  auto completion = [&](const char* name) {
    auto sys = baselines::make_system(name, g, {.seed = 47, .net = &net});
    sys->build();
    NotificationEngine engine(*sys, net);
    RunningStats done;
    for (PeerId p = 0; p < 8; ++p) {
      const double start = engine.now_s();
      const auto id = engine.publish(p * 11, start);
      engine.run_all();
      const auto& rec = engine.record(id);
      if (rec.completed_at_s.has_value()) done.add(*rec.completed_at_s - start);
    }
    return done.mean();
  };
  EXPECT_LT(completion("select"), completion("random"));
}

}  // namespace
}  // namespace sel::pubsub
