// Engine x churn interaction: messages published while peers cycle offline,
// with SELECT's maintenance and tree-cache invalidation in the loop — the
// closest thing to a full-service soak test in the suite.
#include <gtest/gtest.h>

#include "graph/profiles.hpp"
#include "pubsub/engine.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

TEST(EngineChurn, ServiceSurvivesChurnEpochs) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 31);
  net::NetworkModel net(g.num_nodes(), 31);
  core::SelectSystem sys(g, core::SelectParams{}, 31, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  NotificationEngine engine(ps, net);

  sim::SessionChurn::Params churn_params;
  churn_params.session_median_s = 1200.0;
  churn_params.offline_median_s = 900.0;
  sim::SessionChurn churn(g.num_nodes(), churn_params, 31);

  double t = 0.0;
  for (int epoch = 1; epoch <= 6; ++epoch) {
    t = epoch * 600.0;
    engine.run_until(t);
    churn.advance_to(t);
    for (PeerId p = 0; p < g.num_nodes(); ++p) {
      sys.set_peer_online(p, churn.online(p));
    }
    sys.maintenance_round();
    engine.invalidate_trees();
    // Publish from three online users.
    std::size_t published = 0;
    for (PeerId p = 0; p < g.num_nodes() && published < 3; ++p) {
      if (sys.peer_online(p) && g.degree(p) > 0) {
        engine.publish(p, t);
        ++published;
      }
    }
  }
  engine.run_all();
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.messages_published, 18u);
  // Wanted only counts online subscribers reachable by the tree at publish
  // time, so delivery stays complete under churn + recovery.
  EXPECT_GT(stats.delivery_rate(), 0.99);
  EXPECT_GT(stats.deliveries, 100u);
}

TEST(EngineChurn, InvalidationPicksUpRepairedTrees) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 250, 33);
  net::NetworkModel net(g.num_nodes(), 33);
  core::SelectSystem sys(g, core::SelectParams{}, 33, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  NotificationEngine engine(ps, net);

  const PeerId publisher = 0;
  const auto first = engine.publish(publisher, 0.0);
  engine.run_all();
  const auto wanted_before = engine.record(first).wanted;

  // Take a quarter of peers offline and repair.
  Rng rng(33);
  for (PeerId p = 1; p < g.num_nodes(); ++p) {
    if (rng.chance(0.25)) sys.set_peer_online(p, false);
  }
  for (int i = 0; i < 6; ++i) sys.maintenance_round();
  engine.invalidate_trees();

  const auto second = engine.publish(publisher, engine.now_s());
  engine.run_all();
  const auto& rec = engine.record(second);
  EXPECT_LE(rec.wanted, wanted_before);
  EXPECT_EQ(rec.delivered, rec.wanted);  // repaired tree still delivers
}

TEST(EngineChurn, RepublishAfterChurnIsCacheMissWithValidRebuiltTree) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 250, 35);
  net::NetworkModel net(g.num_nodes(), 35);
  core::SelectSystem sys(g, core::SelectParams{}, 35, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  NotificationEngine engine(ps, net);

  const PeerId publisher = 0;
  engine.publish(publisher, 0.0);
  engine.publish(publisher, 1.0);
  engine.run_all();
  EXPECT_EQ(engine.stats().tree_cache_misses, 1u);
  EXPECT_EQ(engine.stats().tree_cache_hits, 1u);

  // Churn changes the peer set under the cached tree: republishing without
  // invalidation would reuse a tree containing offline peers. After
  // invalidate_trees() the publish must be a cache miss and the rebuilt
  // tree must deliver to every currently-wanted subscriber.
  const auto subs = ps.subscribers_of(publisher);
  ASSERT_GE(subs.size(), 2u);
  std::vector<PeerId> victims(subs.begin(), subs.end());
  std::sort(victims.begin(), victims.end());
  victims.resize(2);
  for (const PeerId v : victims) sys.set_peer_online(v, false);
  sys.maintenance_round();
  engine.invalidate_trees();

  const auto id = engine.publish(publisher, engine.now_s());
  engine.run_all();
  EXPECT_EQ(engine.stats().tree_cache_misses, 2u);
  EXPECT_EQ(engine.stats().tree_cache_hits, 1u);
  const auto& rec = engine.record(id);
  EXPECT_EQ(rec.delivered, rec.wanted);

  // Back online + invalidation: another rebuild, and the returned
  // subscribers are wanted again.
  for (const PeerId v : victims) sys.set_peer_online(v, true);
  sys.maintenance_round();
  engine.invalidate_trees();
  const auto id2 = engine.publish(publisher, engine.now_s());
  engine.run_all();
  EXPECT_EQ(engine.stats().tree_cache_misses, 3u);
  const auto& rec2 = engine.record(id2);
  EXPECT_GT(rec2.wanted, rec.wanted);
  EXPECT_EQ(rec2.delivered, rec2.wanted);
}

}  // namespace
}  // namespace sel::pubsub
