#include "pubsub/engine.hpp"

#include <gtest/gtest.h>

#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
    net_ = std::make_unique<net::NetworkModel>(g_.num_nodes(), 5);
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 5,
                                                net_.get());
    sys_->build();
    ps_ = std::make_unique<overlay::PubSubSystem>(*sys_);
    engine_ = std::make_unique<NotificationEngine>(*ps_, *net_);
  }

  graph::SocialGraph g_;
  std::unique_ptr<net::NetworkModel> net_;
  std::unique_ptr<core::SelectSystem> sys_;
  std::unique_ptr<overlay::PubSubSystem> ps_;
  std::unique_ptr<NotificationEngine> engine_;
};

TEST_F(EngineTest, DeliversToAllWantedSubscribers) {
  const auto id = engine_->publish(0, 0.0);
  engine_->run_all();
  const auto& rec = engine_->record(id);
  EXPECT_GT(rec.wanted, 0u);
  EXPECT_EQ(rec.delivered, rec.wanted);
  EXPECT_TRUE(rec.completed_at_s.has_value());
}

TEST_F(EngineTest, LatencyIsPositiveAndOrdered) {
  const auto id = engine_->publish(3, 1.0);
  engine_->run_all();
  const auto& rec = engine_->record(id);
  EXPECT_GT(rec.delivery_latency_s.min(), 0.0);
  EXPECT_GE(*rec.completed_at_s, 1.0 + rec.delivery_latency_s.max());
}

TEST_F(EngineTest, MatchesStaticLatencyMetric) {
  // The event-driven engine and the one-shot analytic metric walk the same
  // tree with the same transfer model, so per-subscriber latencies agree.
  const auto metrics = measure_latency(*ps_, *net_, {7});
  const auto id = engine_->publish(7, 0.0);
  engine_->run_all();
  const auto& rec = engine_->record(id);
  ASSERT_EQ(rec.delivery_latency_s.count(), metrics.per_subscriber_s.count());
  EXPECT_NEAR(rec.delivery_latency_s.mean(), metrics.per_subscriber_s.mean(),
              1e-9);
  EXPECT_NEAR(rec.delivery_latency_s.max(), metrics.per_tree_s.mean(), 1e-9);
}

TEST_F(EngineTest, ConcurrentMessagesInterleave) {
  const auto a = engine_->publish(0, 0.0);
  const auto b = engine_->publish(1, 0.5);
  const auto c = engine_->publish(2, 1.0);
  engine_->run_all();
  for (const auto id : {a, b, c}) {
    const auto& rec = engine_->record(id);
    EXPECT_EQ(rec.delivered, rec.wanted) << "message " << id;
  }
  EXPECT_EQ(engine_->stats().messages_published, 3u);
}

TEST_F(EngineTest, RunUntilDeliversPartially) {
  const auto id = engine_->publish(0, 0.0);
  engine_->run_until(0.05);  // much less than one payload transfer time
  const auto& rec = engine_->record(id);
  EXPECT_LT(rec.delivered, rec.wanted);
  engine_->run_all();
  EXPECT_EQ(rec.delivered, rec.wanted);
}

TEST_F(EngineTest, TreeCacheHitsOnRepeatPublisher) {
  engine_->publish(0, 0.0);
  engine_->publish(0, 1.0);
  engine_->publish(0, 2.0);
  engine_->run_all();
  EXPECT_EQ(engine_->stats().tree_cache_misses, 1u);
  EXPECT_EQ(engine_->stats().tree_cache_hits, 2u);
  engine_->invalidate_trees();
  engine_->publish(0, engine_->now_s());
  engine_->run_all();
  EXPECT_EQ(engine_->stats().tree_cache_misses, 2u);
}

TEST_F(EngineTest, OfflineSubscribersAreNotWanted) {
  const auto subs = ps_->subscribers_of(0);
  ASSERT_FALSE(subs.empty());
  const PeerId victim = *subs.begin();
  sys_->set_peer_online(victim, false);
  engine_->invalidate_trees();
  const auto id = engine_->publish(0, 0.0);
  engine_->run_all();
  const auto& rec = engine_->record(id);
  EXPECT_EQ(rec.delivered, rec.wanted);
  EXPECT_LT(rec.wanted, subs.size());
}

TEST_F(EngineTest, SelectHasNearZeroRelayForwards) {
  for (PeerId p = 0; p < 10; ++p) engine_->publish(p, 0.0);
  engine_->run_all();
  const auto& stats = engine_->stats();
  EXPECT_GT(stats.deliveries, 100u);
  // Relay forwards should be a tiny fraction of deliveries for SELECT.
  EXPECT_LT(static_cast<double>(stats.relay_forwards),
            0.2 * static_cast<double>(stats.deliveries));
  EXPECT_GT(stats.delivery_rate(), 0.99);
}

TEST_F(EngineTest, RecordLookupOfUnknownIdAborts) {
  EXPECT_DEATH((void)engine_->record(12345), "Precondition");
}

}  // namespace
}  // namespace sel::pubsub
