#include "pubsub/interest.hpp"

#include <gtest/gtest.h>

#include "graph/profiles.hpp"
#include "overlay/system.hpp"
#include "select/protocol.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

TEST(InterestModel, ExtremesAreTotal) {
  InterestModel all(1.0, 1);
  InterestModel none(0.0, 1);
  for (graph::NodeId s = 0; s < 50; ++s) {
    EXPECT_TRUE(all.interested(s, s + 1));
    EXPECT_FALSE(none.interested(s, s + 1));
  }
}

TEST(InterestModel, DeterministicPerPairAndSeed) {
  InterestModel a(0.5, 7);
  InterestModel b(0.5, 7);
  for (graph::NodeId s = 0; s < 200; ++s) {
    EXPECT_EQ(a.interested(s, 1000 + s), b.interested(s, 1000 + s));
  }
}

TEST(InterestModel, FrequencyMatchesProbability) {
  InterestModel m(0.3, 11);
  std::size_t yes = 0;
  const std::size_t trials = 20'000;
  for (std::size_t i = 0; i < trials; ++i) {
    if (m.interested(static_cast<graph::NodeId>(i),
                     static_cast<graph::NodeId>(i * 31 + 7))) {
      ++yes;
    }
  }
  EXPECT_NEAR(static_cast<double>(yes) / trials, 0.3, 0.02);
}

TEST(InterestModel, IsAsymmetric) {
  InterestModel m(0.5, 13);
  std::size_t asymmetric = 0;
  for (graph::NodeId s = 0; s < 500; ++s) {
    if (m.interested(s, s + 1) != m.interested(s + 1, s)) ++asymmetric;
  }
  EXPECT_GT(asymmetric, 100u);
}

TEST(InterestModel, FiltersSubscriberSets) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 3);
  core::SelectSystem sys(g, core::SelectParams{}, 3);
  sys.build();
  overlay::PubSubSystem ps(sys);
  const auto full = ps.subscribers_of(0);
  InterestModel m(0.5, 17);
  ps.set_interest_function(&m);
  const auto filtered = ps.subscribers_of(0);
  EXPECT_LT(filtered.size(), full.size());
  EXPECT_GT(filtered.size(), 0u);
  for (const PeerId s : filtered) {
    EXPECT_TRUE(full.contains(s));
    EXPECT_TRUE(m.interested(s, 0));
  }
  ps.set_interest_function(nullptr);
  EXPECT_EQ(ps.subscribers_of(0).size(), full.size());
}

TEST(InterestModel, TreesOnlyTargetInterestedSubscribers) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5);
  sys.build();
  overlay::PubSubSystem ps(sys);
  InterestModel m(0.4, 19);
  ps.set_interest_function(&m);
  const auto subs = ps.subscribers_of(7);
  const auto tree = ps.build_tree(7);
  std::size_t covered = 0;
  for (const PeerId s : subs) {
    if (tree.contains(s)) ++covered;
  }
  EXPECT_GT(covered, subs.size() * 9 / 10);
  // Uninterested friends may still appear as relays but are not counted as
  // subscribers: relays are measured against the filtered set.
  const auto relays = tree.relay_nodes(subs);
  for (const PeerId r : relays) EXPECT_FALSE(subs.contains(r));
}

}  // namespace
}  // namespace sel::pubsub
