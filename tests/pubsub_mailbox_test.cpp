// Replicated-mailbox durability tier (pubsub/mailbox.hpp): CMA-weighted
// placement, quorum store/ack writes, SEL_REPLAY_CAP interplay, the
// publisher-crash + replica-crash recovery path (ROADMAP item 4's exit
// criterion), byzantine-acceptor tolerance, and the late-copy-vs-replay
// race on the in-process transport.
#include "pubsub/mailbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "graph/profiles.hpp"
#include "pubsub/engine.hpp"
#include "runtime/event_engine.hpp"
#include "select/protocol.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

class MailboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
    net_ = std::make_unique<net::NetworkModel>(g_.num_nodes(), 5);
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 5,
                                                net_.get());
    sys_->build();
    ps_ = std::make_unique<overlay::PubSubSystem>(*sys_);
  }

  void TearDown() override {
    for (PeerId p = 0; p < g_.num_nodes(); ++p) sys_->set_peer_online(p, true);
  }

  graph::SocialGraph g_;
  std::unique_ptr<net::NetworkModel> net_;
  std::unique_ptr<core::SelectSystem> sys_;
  std::unique_ptr<overlay::PubSubSystem> ps_;
};

TEST_F(MailboxTest, PlacementIsDeterministicAndExcludesSubscriber) {
  runtime::EventEngine q;
  const MailboxManager a(q, *sys_, *net_, MailboxPolicy{}, 42);
  const MailboxManager b(q, *sys_, *net_, MailboxPolicy{}, 42);
  const PeerId sub = 7;
  const auto ra = a.placement_ranking(sub);
  const auto rb = b.placement_ranking(sub);
  ASSERT_GE(ra.size(), MailboxPolicy{}.replicas);
  EXPECT_EQ(ra, rb);  // pure in (seed, subscriber, candidate)
  EXPECT_EQ(std::find(ra.begin(), ra.end(), sub), ra.end());

  // A different seed draws a different ranking.
  const MailboxManager c(q, *sys_, *net_, MailboxPolicy{}, 43);
  EXPECT_NE(c.placement_ranking(sub), ra);
}

TEST_F(MailboxTest, PlacementFavorsHighAvailabilityPeers) {
  runtime::EventEngine q;
  MailboxManager mb(q, *sys_, *net_, MailboxPolicy{}, 42);
  const PeerId sub = 7;
  const auto neighbors = sys_->overlay().neighbor_list(sub);
  ASSERT_GE(neighbors.size(), 2u);
  // One neighborhood peer gets near-perfect CMA, everyone else near-zero:
  // the weighted rendezvous score u^(1/cma^bias) must rank it first.
  const PeerId target = neighbors.front() == sub ? neighbors[1]
                                                 : neighbors.front();
  mb.set_availability_fn(
      [target](PeerId p) { return p == target ? 1.0 : 0.01; });
  const auto ranking = mb.placement_ranking(sub);
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking.front(), target);
}

TEST_F(MailboxTest, ReplicateReachesQuorumAndReplaysOnce) {
  const check::ScopedLevel full(check::Level::kFull);
  runtime::EventEngine q;
  MailboxManager mb(q, *sys_, *net_, MailboxPolicy{}, 42);
  const PeerId sub = 7;
  const PeerId source = 0;
  mb.replicate(1, sub, source, 0.0);
  mb.replicate(1, sub, source, 0.0);  // idempotent per (msg, subscriber)
  q.run();

  EXPECT_EQ(mb.stats().replicated, 1u);
  EXPECT_EQ(mb.pending(), 1u);
  EXPECT_EQ(mb.stats().quorum_writes, 1u);
  EXPECT_EQ(mb.stats().quorum_degraded, 0u);
  // Fault-free acceptors: all k slots store and ack exactly once.
  EXPECT_EQ(mb.stats().acks, mb.policy().replicas);
  const auto replicas = mb.replicas_of(1, sub);
  EXPECT_EQ(replicas.size(), mb.policy().replicas);
  EXPECT_EQ(std::find(replicas.begin(), replicas.end(), sub), replicas.end());
  EXPECT_EQ(std::find(replicas.begin(), replicas.end(), source),
            replicas.end());

  const auto msgs = mb.replay(sub, q.now_s());
  EXPECT_EQ(msgs, std::vector<MessageId>{1});
  EXPECT_EQ(mb.stats().replays, 1u);
  EXPECT_EQ(mb.stats().replay_lost, 0u);
  EXPECT_EQ(mb.pending(), 0u);
  EXPECT_TRUE(mb.replicas_of(1, sub).empty());
  // Replaying again serves nothing: the entry is resolved.
  EXPECT_TRUE(mb.replay(sub, q.now_s()).empty());
}

TEST_F(MailboxTest, PrimaryDeliverySupersedesTheMailboxCopy) {
  runtime::EventEngine q;
  MailboxManager mb(q, *sys_, *net_, MailboxPolicy{}, 42);
  mb.replicate(1, 7, 0, 0.0);
  q.run();
  mb.on_delivered(1, 7);
  EXPECT_EQ(mb.stats().superseded, 1u);
  EXPECT_EQ(mb.pending(), 0u);
  EXPECT_TRUE(mb.replay(7, q.now_s()).empty());
  EXPECT_EQ(mb.stats().replay_lost, 0u);
}

TEST_F(MailboxTest, PlacementAvoidsTheSubscribersFailureDomainSiblings) {
  fault::FaultSpec spec;
  spec.bursts = 1;
  spec.burst_width = 16;
  fault::FaultPlan plan(spec, 42, g_.num_nodes());
  ASSERT_GT(plan.num_domains(), 1u);
  runtime::EventEngine q;
  MailboxManager mb(q, *sys_, *net_, MailboxPolicy{}, 42);
  mb.set_fault_plan(&plan);
  const PeerId sub = 7;
  const PeerId source = 0;
  mb.replicate(1, sub, source, 0.0);
  q.run();
  const auto replicas = mb.replicas_of(1, sub);
  ASSERT_EQ(replicas.size(), mb.policy().replicas);
  // Availability diversity: no replica shares a correlated-failure domain
  // with the subscriber, the source, or another replica — one burst cannot
  // erase the whole set.
  std::vector<std::uint32_t> domains{plan.failure_domain(sub),
                                     plan.failure_domain(source)};
  for (const PeerId r : replicas) {
    const auto d = plan.failure_domain(r);
    EXPECT_EQ(std::count(domains.begin(), domains.end(), d), 0)
        << "replica " << r << " shares domain " << d;
    domains.push_back(d);
  }
}

TEST_F(MailboxTest, ReplayCapEvictsOldestButMailboxStillRecovers) {
  const check::ScopedLevel full(check::Level::kFull);
  const auto subs = ps_->subscribers_of(0);
  ASSERT_GE(subs.size(), 3u);
  std::vector<PeerId> away(subs.begin(), subs.end());
  away.resize(3);

  // Control: cap 2, no mailbox — the oldest queued entry is simply lost.
  {
    NotificationEngine engine(*ps_, *net_);
    RetryPolicy policy;
    policy.enabled = true;
    policy.replay_cap = 2;
    engine.set_retry_policy(policy);
    for (const PeerId s : away) sys_->set_peer_online(s, false);
    engine.invalidate_trees();
    engine.publish(0, 0.0);
    engine.run_all();
    EXPECT_EQ(engine.stats().replay_evicted, 1u);
    EXPECT_EQ(engine.pending_replays(), 2u);
    // away is ascending (FlatSet order), so away[0] queued first = evicted.
    sys_->set_peer_online(away[0], true);
    EXPECT_EQ(engine.replay_missed(away[0], engine.now_s()), 0u);
    for (const PeerId s : away) sys_->set_peer_online(s, true);
  }

  // With the durability tier armed the evicted entry survives as mailbox
  // replicas and is served back on return.
  {
    NotificationEngine engine(*ps_, *net_);
    RetryPolicy policy;
    policy.enabled = true;
    policy.replay_cap = 2;
    engine.set_retry_policy(policy);
    MailboxManager mb(engine.event_engine(), *sys_, *net_,
                      MailboxPolicy{}, 42);
    engine.set_mailbox(&mb);
    for (const PeerId s : away) sys_->set_peer_online(s, false);
    engine.invalidate_trees();
    const auto id = engine.publish(0, 0.0);
    engine.run_all();
    EXPECT_EQ(engine.stats().replay_evicted, 1u);
    EXPECT_EQ(mb.stats().replicated, 3u);
    for (const PeerId s : away) {
      sys_->set_peer_online(s, true);
      EXPECT_EQ(engine.replay_missed(s, engine.now_s()), 1u);
      EXPECT_TRUE(engine.record(id).delivered_to.contains(s));
    }
    // The evicted subscriber's replay came from the mailbox, the other two
    // from the local queue.
    EXPECT_EQ(engine.stats().mailbox_replays, 1u);
    EXPECT_EQ(engine.stats().replays, 3u);
    EXPECT_EQ(mb.pending(), 0u);
    EXPECT_TRUE(engine.record(id).missed.empty());
  }
}

TEST_F(MailboxTest, PublisherCrashThenReplicaCrashStillDelivers) {
  // ROADMAP item 4's exit scenario: the publisher (only local copy holder)
  // crashes mid-store-and-forward AND one mailbox replica crashes before
  // the subscriber returns — the message must still be delivered, via
  // quorum replicas plus anti-entropy handoff.
  const check::ScopedLevel full(check::Level::kFull);
  fault::FaultPlan plan(fault::FaultSpec{}, 7, g_.num_nodes());
  const auto subs = ps_->subscribers_of(0);
  ASSERT_GE(subs.size(), 2u);
  const PeerId away_a = *subs.begin();
  const PeerId away_b = *std::next(subs.begin());

  // Control: no mailbox — the crash loses both queued messages for good.
  {
    NotificationEngine engine(*ps_, *net_);
    engine.set_fault_plan(&plan);
    RetryPolicy policy;
    policy.enabled = true;
    engine.set_retry_policy(policy);
    sys_->set_peer_online(away_a, false);
    sys_->set_peer_online(away_b, false);
    engine.invalidate_trees();
    engine.publish(0, 0.0);
    engine.run_all();
    EXPECT_EQ(engine.pending_replays(), 2u);
    engine.on_peer_crashed(0, engine.now_s());
    EXPECT_EQ(engine.stats().replay_dropped_crash, 2u);
    sys_->set_peer_online(away_a, true);
    EXPECT_EQ(engine.replay_missed(away_a, engine.now_s()), 0u);  // lost
    sys_->set_peer_online(away_a, false);
  }

  plan.reset();
  NotificationEngine engine(*ps_, *net_);
  engine.set_fault_plan(&plan);
  RetryPolicy policy;
  policy.enabled = true;
  engine.set_retry_policy(policy);
  MailboxManager mb(engine.event_engine(), *sys_, *net_,
                    MailboxPolicy{}, 7);
  mb.set_fault_plan(&plan);
  mb.set_availability_fn([this](PeerId p) { return sys_->cma_of(p); });
  engine.set_mailbox(&mb);

  engine.invalidate_trees();
  const auto id = engine.publish(0, 0.0);
  engine.run_all();
  EXPECT_EQ(mb.stats().replicated, 2u);
  EXPECT_EQ(mb.stats().quorum_writes, 2u);

  // Publisher dies: the local replay queue entries are dropped...
  plan.force_crash(0);
  sys_->set_peer_online(0, false);
  engine.on_peer_crashed(0, engine.now_s());
  EXPECT_EQ(engine.stats().replay_dropped_crash, 2u);

  // ...then one of away_a's mailbox replicas dies too. Anti-entropy hands
  // the copy off from a surviving replica to a fresh candidate.
  const auto replicas = mb.replicas_of(id, away_a);
  ASSERT_EQ(replicas.size(), mb.policy().replicas);
  plan.force_crash(replicas.front());
  sys_->set_peer_online(replicas.front(), false);
  engine.on_peer_crashed(replicas.front(), engine.now_s());
  EXPECT_GE(mb.stats().handoffs, 1u);
  engine.run_all();  // the handoff store/ack completes

  sys_->set_peer_online(away_a, true);
  EXPECT_EQ(engine.replay_missed(away_a, engine.now_s()), 1u);
  sys_->set_peer_online(away_b, true);
  EXPECT_EQ(engine.replay_missed(away_b, engine.now_s()), 1u);
  EXPECT_TRUE(engine.record(id).delivered_to.contains(away_a));
  EXPECT_TRUE(engine.record(id).delivered_to.contains(away_b));
  EXPECT_EQ(engine.stats().mailbox_replays, 2u);
  EXPECT_EQ(mb.stats().replay_lost, 0u);
  EXPECT_EQ(mb.pending(), 0u);
  // Replaying again is a no-op, not a duplicate delivery.
  EXPECT_EQ(engine.replay_missed(away_a, engine.now_s()), 0u);
}

TEST_F(MailboxTest, ToleratesMinorityByzantineAcceptors) {
  // k = 3, quorum 2: any entry with at most floor((k-1)/2) = 1 byzantine
  // replica keeps >= 2 honest stored copies (byzantine acceptors always
  // ack, so the write settles, but they withhold at replay) and must be
  // recoverable.
  const check::ScopedLevel full(check::Level::kFull);
  fault::FaultSpec spec;
  spec.byzantine = 0.3;
  fault::FaultPlan plan(spec, 11, g_.num_nodes());
  runtime::EventEngine q;
  MailboxManager mb(q, *sys_, *net_, MailboxPolicy{}, 11);
  mb.set_fault_plan(&plan);

  const PeerId source = 0;
  std::vector<PeerId> subscribers;
  for (PeerId s = 1; s <= 40; ++s) subscribers.push_back(s);
  for (std::size_t i = 0; i < subscribers.size(); ++i) {
    mb.replicate(static_cast<MessageId>(i + 1), subscribers[i], source,
                 0.0);
  }
  q.run();
  EXPECT_EQ(mb.stats().replicated, subscribers.size());
  // Byzantine acceptors always ack, so every write settles at quorum.
  EXPECT_EQ(mb.stats().quorum_writes, subscribers.size());

  std::size_t tolerable = 0;
  for (std::size_t i = 0; i < subscribers.size(); ++i) {
    const auto msg = static_cast<MessageId>(i + 1);
    const auto replicas = mb.replicas_of(msg, subscribers[i]);
    const auto byz = static_cast<std::size_t>(
        std::count_if(replicas.begin(), replicas.end(),
                      [&](PeerId p) { return plan.byzantine(p); }));
    const bool within_bound = byz + 1 <= (mb.policy().replicas + 1) / 2;
    const auto served = mb.replay(subscribers[i], q.now_s());
    if (within_bound) {
      ++tolerable;
      EXPECT_EQ(served, std::vector<MessageId>{msg})
          << "entry with " << byz << " byzantine replicas lost";
    }
  }
  // The 30% byzantine population must have left plenty of within-bound
  // entries, or the loop proved nothing.
  EXPECT_GE(tolerable, subscribers.size() / 2);
  EXPECT_GT(plan.stats().false_acks + plan.stats().duplicate_acks, 0u);
}

TEST_F(MailboxTest, LateCopyBeatsReplayWithoutDoubleDelivery) {
  // The rec.missed.erase(to) race: a subscriber offline at publish time is
  // queued for replay (and replicated to its mailbox), but the publisher's
  // stale cached tree still routes a copy toward it. The subscriber comes
  // back before the copy arrives, the copy delivers first — replay must
  // then be a no-op on both tiers, with the dedup checks enforced.
  const check::ScopedLevel full(check::Level::kFull);
  NotificationEngine engine(*ps_, *net_);
  RetryPolicy policy;
  policy.enabled = true;
  engine.set_retry_policy(policy);
  MailboxManager mb(engine.event_engine(), *sys_, *net_,
                    MailboxPolicy{}, 42);
  engine.set_mailbox(&mb);

  const auto subs = ps_->subscribers_of(0);
  ASSERT_FALSE(subs.empty());
  const PeerId racer = *subs.begin();

  // Warm the per-publisher tree cache with everyone online.
  const auto id1 = engine.publish(0, 0.0);
  engine.run_all();
  EXPECT_TRUE(engine.record(id1).delivered_to.contains(racer));

  // Offline at publish: queued for replay + replicated. The cached tree is
  // deliberately NOT invalidated, so the copy is still routed.
  sys_->set_peer_online(racer, false);
  const double t2 = engine.now_s() + 10.0;
  const auto id2 = engine.publish(0, t2);
  EXPECT_EQ(engine.pending_replays(), 1u);
  EXPECT_EQ(mb.stats().replicated, 1u);
  EXPECT_EQ(engine.stats().tree_cache_hits, 1u);

  // Back online before the copy's arrival: the in-flight copy wins.
  engine.run_until(t2);
  sys_->set_peer_online(racer, true);
  engine.run_all();

  const auto& rec = engine.record(id2);
  EXPECT_TRUE(rec.delivered_to.contains(racer));
  EXPECT_TRUE(rec.missed.empty());
  EXPECT_EQ(mb.stats().superseded, 1u);
  EXPECT_EQ(mb.pending(), 0u);
  // The replay queue still holds the stale entry; replaying serves nothing
  // and the dedup invariant (validate_replay_dedup) holds under kFull.
  EXPECT_EQ(engine.replay_missed(racer, engine.now_s()), 0u);
  EXPECT_EQ(engine.stats().replays, 0u);
  EXPECT_EQ(engine.stats().mailbox_replays, 0u);
  EXPECT_EQ(rec.duplicates_suppressed, 0u);
}

}  // namespace
}  // namespace sel::pubsub
