#include "pubsub/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/social_graph.hpp"

namespace sel::pubsub {
namespace {

using overlay::DisseminationTree;
using overlay::PeerId;
using overlay::RouteResult;

/// Hand-wired overlay for metric verification: a line social graph
/// 0-1-2-...-(n-1) whose "overlay" routes along the line. The dissemination
/// layer composes over it exactly as over any registered overlay.
class LineSystem final : public overlay::Overlay {
 public:
  explicit LineSystem(std::size_t n) {
    graph::GraphBuilder b(n);
    for (graph::NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
    graph_ = b.build();
    online_.assign(n, true);
  }

  [[nodiscard]] std::string_view name() const override { return "line"; }
  [[nodiscard]] const graph::SocialGraph& social() const override {
    return graph_;
  }
  void build() override {}
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

  [[nodiscard]] RouteResult route(PeerId from, PeerId to) const override {
    RouteResult r;
    if (!online_[from] || !online_[to]) return r;
    PeerId cur = from;
    r.path.push_back(cur);
    while (cur != to) {
      cur = to > cur ? cur + 1 : cur - 1;
      if (!online_[cur]) return r;  // blocked
      r.path.push_back(cur);
    }
    r.success = true;
    r.status = overlay::RouteStatus::kOk;
    return r;
  }

  [[nodiscard]] std::vector<PeerId> neighbors(PeerId p) const override {
    std::vector<PeerId> out;
    if (p > 0) out.push_back(p - 1);
    if (p + 1 < graph_.num_nodes()) out.push_back(p + 1);
    return out;
  }

  void set_peer_online(PeerId p, bool online) override {
    online_[p] = online;
  }
  [[nodiscard]] bool peer_online(PeerId p) const override {
    return online_[p];
  }

 private:
  graph::SocialGraph graph_;
  std::vector<bool> online_;
};

TEST(MeasureHops, LineNeighborsAreOneHop) {
  LineSystem sys(20);
  const overlay::PubSubSystem ps(sys);
  const auto metrics = measure_hops(ps, 200, 1);
  EXPECT_EQ(metrics.attempted, 200u);
  EXPECT_EQ(metrics.delivered, 200u);
  // Social lookups on a line go to direct neighbours: exactly 1 hop.
  EXPECT_DOUBLE_EQ(metrics.hops.mean(), 1.0);
}

TEST(MeasureHops, EmptyGraphYieldsNothing) {
  LineSystem sys(0);
  const overlay::PubSubSystem ps(sys);
  const auto metrics = measure_hops(ps, 50, 1);
  EXPECT_EQ(metrics.attempted, 0u);
  EXPECT_DOUBLE_EQ(metrics.success_rate(), 0.0);
}

TEST(MeasureRelays, LineTreesHaveNoRelays) {
  LineSystem sys(10);
  const overlay::PubSubSystem ps(sys);
  const auto metrics = measure_relays(ps, {5});
  // Publisher 5's subscribers are 4 and 6, both direct: zero relays.
  EXPECT_DOUBLE_EQ(metrics.relays_per_path.mean(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.coverage.mean(), 1.0);
}

TEST(MeasureRelays, EndpointPublisher) {
  LineSystem sys(4);
  const overlay::PubSubSystem ps(sys);
  const auto metrics = measure_relays(ps, {0});
  EXPECT_DOUBLE_EQ(metrics.coverage.mean(), 1.0);
}

TEST(MeasureLoad, DecileSharesSumToHundred) {
  LineSystem sys(40);
  const overlay::PubSubSystem ps(sys);
  std::vector<PeerId> publishers;
  for (PeerId p = 0; p < 40; p += 3) publishers.push_back(p);
  const auto metrics = measure_load(ps, publishers);
  const double total = std::accumulate(
      metrics.share_by_degree_decile.begin(),
      metrics.share_by_degree_decile.end(), 0.0);
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_GE(metrics.gini, 0.0);
  EXPECT_LE(metrics.gini, 1.0);
}

TEST(MeasureLoad, RelayShareZeroOnLine) {
  LineSystem sys(10);
  const overlay::PubSubSystem ps(sys);
  const auto metrics = measure_load(ps, {5});
  // Tree = 4<-5->6; the forwarding peer (5) is the publisher; children do
  // not forward. No non-subscriber forwards anything.
  EXPECT_DOUBLE_EQ(metrics.relay_forward_share, 0.0);
  EXPECT_GT(metrics.forwards_per_delivery, 0.0);
}

TEST(MeasureLatency, ArrivalTimesAccumulateAlongTree) {
  LineSystem sys(6);
  const overlay::PubSubSystem ps(sys);
  net::NetworkModel net(6, 42);
  const auto metrics = measure_latency(ps, net, {0}, 1.2e6);
  // Subscriber of 0 is only peer 1: one delivery.
  EXPECT_EQ(metrics.per_subscriber_s.count(), 1u);
  EXPECT_GT(metrics.per_subscriber_s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.per_tree_s.mean(),
                   metrics.per_subscriber_s.mean());
}

TEST(MeasureLatency, DeeperSubscribersArriveLater) {
  // Publisher 2 on a 5-line: subscribers 1 and 3 (depth 1). Publisher 0:
  // subscriber 1 (depth 1). Compare per-tree latency with a longer chain by
  // checking monotonicity of arrival along one path.
  LineSystem sys(5);
  const overlay::PubSubSystem ps(sys);
  net::NetworkModel net(5, 7);
  const auto one = measure_latency(ps, net, {2}, 1.2e6);
  EXPECT_EQ(one.per_subscriber_s.count(), 2u);
  EXPECT_GE(one.per_subscriber_s.max(), one.per_subscriber_s.min());
}

TEST(MeasureAvailability, FullWhenEveryoneOnline) {
  LineSystem sys(12);
  const overlay::PubSubSystem ps(sys);
  std::vector<PeerId> publishers{3, 6};
  const auto metrics = measure_availability(ps, publishers);
  EXPECT_DOUBLE_EQ(metrics.availability(), 1.0);
  EXPECT_EQ(metrics.wanted, 4u);  // two publishers x two neighbours
}

TEST(MeasureAvailability, OfflineSubscribersExcluded) {
  LineSystem sys(12);
  const overlay::PubSubSystem ps(sys);
  sys.set_peer_online(4, false);
  const auto metrics = measure_availability(ps, {3});
  // Subscribers of 3 are {2, 4}; 4 is offline and not wanted.
  EXPECT_EQ(metrics.wanted, 1u);
  EXPECT_DOUBLE_EQ(metrics.availability(), 1.0);
}

TEST(MeasureAvailability, BlockedRelayLowersAvailability) {
  LineSystem sys(12);
  const overlay::PubSubSystem ps(sys);
  sys.set_peer_online(5, false);
  // Publisher 4's subscribers: 3 (fine) and 5 (offline, excluded). But
  // publisher 6's subscriber 5 excluded, 7 fine. Use a publisher whose
  // route crosses the hole: none on a line; instead verify offline
  // publisher contributes nothing.
  const auto metrics = measure_availability(ps, {5});
  EXPECT_EQ(metrics.wanted, 0u);
  EXPECT_DOUBLE_EQ(metrics.availability(), 1.0);
}

}  // namespace
}  // namespace sel::pubsub
