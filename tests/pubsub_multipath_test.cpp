#include "pubsub/multipath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/profiles.hpp"
#include "select/protocol.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

class MultipathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 400, 3);
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 3);
    sys_->build();
  }

  graph::SocialGraph g_;
  std::unique_ptr<core::SelectSystem> sys_;
};

TEST_F(MultipathTest, PlanCoversMostSubscribers) {
  const auto plan = plan_multipath(*sys_, g_, 0);
  EXPECT_EQ(plan.publisher, 0u);
  EXPECT_GE(plan.paths.size(), g_.degree(0) * 9 / 10);
}

TEST_F(MultipathTest, PrimaryPathsStartAtPublisherAndEndAtSubscriber) {
  const auto plan = plan_multipath(*sys_, g_, 5);
  for (const auto& entry : plan.paths) {
    ASSERT_FALSE(entry.primary.empty());
    EXPECT_EQ(entry.primary.front(), 5u);
    EXPECT_EQ(entry.primary.back(), entry.subscriber);
  }
}

TEST_F(MultipathTest, BackupIntermediatesAreDisjointFromPrimary) {
  const auto plan = plan_multipath(*sys_, g_, 7);
  for (const auto& entry : plan.paths) {
    if (entry.backup.empty() || entry.backup == entry.primary) continue;
    const FlatSet<PeerId> primary_mid(entry.primary.begin() + 1,
                                      entry.primary.end() - 1);
    for (std::size_t i = 1; i + 1 < entry.backup.size(); ++i) {
      EXPECT_FALSE(primary_mid.contains(entry.backup[i]))
          << "backup reuses primary intermediate " << entry.backup[i];
    }
  }
}

TEST_F(MultipathTest, DirectLinksAreTheirOwnBackup) {
  const auto plan = plan_multipath(*sys_, g_, 2);
  for (const auto& entry : plan.paths) {
    if (entry.primary.size() == 2) {
      EXPECT_EQ(entry.backup, entry.primary);
    }
  }
}

TEST_F(MultipathTest, BackupCoverageIsHigh) {
  const auto plan = plan_multipath(*sys_, g_, 0);
  EXPECT_GT(plan.backup_coverage(), 0.7);
}

TEST_F(MultipathTest, FaultToleranceImprovesDelivery) {
  std::vector<PeerId> publishers{0, 17, 42};
  const auto result = measure_fault_tolerance(*sys_, g_,
                                              publishers, 0.2, 40, 9);
  // With 20% of peers failing, the backup path recovers a meaningful share
  // of lost deliveries.
  EXPECT_GT(result.multi_path_delivery, result.single_path_delivery + 0.02);
  EXPECT_GT(result.multi_path_delivery, 0.85);
  EXPECT_LE(result.multi_path_delivery, 1.0);
}

TEST_F(MultipathTest, FaultToleranceIsDeterministicInSeed) {
  const std::vector<PeerId> publishers{0, 17, 42};
  const auto a = measure_fault_tolerance(*sys_, g_, publishers,
                                         0.1, 30, 77);
  const auto b = measure_fault_tolerance(*sys_, g_, publishers,
                                         0.1, 30, 77);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.single_path_delivery, b.single_path_delivery);  // bitwise
  EXPECT_EQ(a.multi_path_delivery, b.multi_path_delivery);
  EXPECT_EQ(a.single_path_half_width, b.single_path_half_width);
  EXPECT_EQ(a.multi_path_half_width, b.multi_path_half_width);

  const auto c = measure_fault_tolerance(*sys_, g_, publishers,
                                         0.1, 30, 78);
  EXPECT_NE(a.single_path_delivery, c.single_path_delivery);
}

TEST_F(MultipathTest, FaultTolerancePinnedEstimateForFixedSeed) {
  // Regression pin: the Monte-Carlo estimate for this exact configuration
  // (graph seed 3, publishers {0, 17, 42}, p = 0.2, 40 rounds, seed 9) must
  // not drift — a change here means the trial loop, the RNG stream layout,
  // the path planner or the graph generator changed behaviour. (Re-pinned
  // when holme_kim switched to sorted attachment-target iteration so
  // same-seed graphs stopped depending on hash-table order, and again when
  // plan_multipath started routing through Overlay::route — primaries now
  // use SELECT's lookahead options instead of bare greedy defaults.)
  const std::vector<PeerId> publishers{0, 17, 42};
  const auto r = measure_fault_tolerance(*sys_, g_, publishers,
                                         0.2, 40, 9);
  EXPECT_EQ(r.trials, 7838u);
  EXPECT_NEAR(r.single_path_delivery, 0.79880071446797651, 1e-12);
  EXPECT_NEAR(r.multi_path_delivery, 0.93225312579739728, 1e-12);
  // Half-widths follow 1.96 * sqrt(p (1-p) / n) exactly.
  const auto hw = [&r](double p) {
    return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(r.trials));
  };
  EXPECT_DOUBLE_EQ(r.single_path_half_width, hw(r.single_path_delivery));
  EXPECT_DOUBLE_EQ(r.multi_path_half_width, hw(r.multi_path_delivery));
}

TEST_F(MultipathTest, NoFailuresMeansFullDelivery) {
  const auto result =
      measure_fault_tolerance(*sys_, g_, {0}, 0.0, 5, 9);
  EXPECT_DOUBLE_EQ(result.single_path_delivery, 1.0);
  EXPECT_DOUBLE_EQ(result.multi_path_delivery, 1.0);
}

TEST_F(MultipathTest, TotalFailureMeansDirectOnly) {
  // With everyone failing, only direct (no-intermediate) paths deliver.
  const auto result =
      measure_fault_tolerance(*sys_, g_, {0}, 1.0, 3, 9);
  EXPECT_DOUBLE_EQ(result.single_path_delivery, result.multi_path_delivery);
}

TEST(MultipathPlanStats, EmptyPlanDefaults) {
  MultipathPlan plan;
  EXPECT_DOUBLE_EQ(plan.backup_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(plan.backup_stretch(), 0.0);
}

TEST(RouteAvoidance, ExcludedPeersAreNotUsedAsRelays) {
  overlay::RingSubstrate ov(8);
  for (PeerId p = 0; p < 8; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / 8.0));
  }
  ov.rebuild_ring();
  // Route 0 -> 2 normally passes through 1; avoiding 1 forces the other
  // direction around the ring.
  const FlatSet<PeerId> avoid{1};
  overlay::RouteOptions opts;
  opts.avoid = &avoid;
  const auto r = ov.greedy_route(0, 2, opts);
  ASSERT_TRUE(r.success);
  for (const PeerId p : r.path) EXPECT_NE(p, 1u);
}

TEST(RouteAvoidance, AvoidingDestinationIsAllowed) {
  overlay::RingSubstrate ov(4);
  for (PeerId p = 0; p < 4; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / 4.0));
  }
  ov.rebuild_ring();
  const FlatSet<PeerId> avoid{1};
  overlay::RouteOptions opts;
  opts.avoid = &avoid;
  const auto r = ov.greedy_route(0, 1, opts);
  EXPECT_TRUE(r.success);  // dst exempt from avoidance
}

}  // namespace
}  // namespace sel::pubsub
