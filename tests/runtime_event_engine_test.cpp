// Execution-runtime unit tests: EventEngine drain API, runtime options
// parsing (SEL_RUNTIME / SEL_TRANSPORT / SEL_RUNTIME_ROUND_S), and
// superstep quantization arithmetic.
#include "runtime/event_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "runtime/runtime.hpp"

namespace sel::runtime {
namespace {

TEST(EventEngine, StepFiresExactlyOneEvent) {
  EventEngine e;
  std::vector<int> order;
  e.schedule(1.0, [&order](double) { order.push_back(1); });
  e.schedule(2.0, [&order](double) { order.push_back(2); });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(e.now_s(), 1.0);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_TRUE(e.idle());
}

TEST(EventEngine, RunUntilCountsFiredAndAdvancesClock) {
  EventEngine e;
  int fired = 0;
  e.schedule(1.0, [&fired](double) { ++fired; });
  e.schedule(2.0, [&fired](double) { ++fired; });
  e.schedule(9.0, [&fired](double) { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now_s(), 5.0);
  EXPECT_EQ(e.queue_depth(), 1u);
  EXPECT_DOUBLE_EQ(e.next_event_s(), 9.0);
  EXPECT_EQ(e.run(), 1u);
  EXPECT_TRUE(e.idle());
}

TEST(EventEngine, RunRespectsBackstop) {
  EventEngine e;
  std::function<void(double)> forever = [&](double now) {
    e.schedule(now + 1.0, forever);
  };
  e.schedule(0.0, forever);
  EXPECT_EQ(e.run(25), 25u);
}

TEST(EventEngine, CancelPreventsFiring) {
  EventEngine e;
  int fired = 0;
  const auto h = e.schedule(1.0, [&fired](double) { ++fired; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));
  EXPECT_EQ(e.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(EventEngine, TieSeedPermutesEqualTimeOrderDeterministically) {
  const auto order_with = [](std::uint64_t tie_seed) {
    EventEngine e(tie_seed);
    std::vector<int> order;
    for (int i = 0; i < 12; ++i) {
      e.schedule(1.0, [&order, i](double) { order.push_back(i); });
    }
    e.run();
    return order;
  };
  const auto a = order_with(99);
  EXPECT_EQ(a, order_with(99));
  EXPECT_NE(a, order_with(0));
}

TEST(RuntimeOptions, ModeParsingAcceptsAliases) {
  EXPECT_EQ(parse_mode("async", Mode::kSuperstep), Mode::kAsync);
  EXPECT_EQ(parse_mode("EVENT", Mode::kSuperstep), Mode::kAsync);
  EXPECT_EQ(parse_mode("superstep", Mode::kAsync), Mode::kSuperstep);
  EXPECT_EQ(parse_mode("Rounds", Mode::kAsync), Mode::kSuperstep);
  EXPECT_EQ(parse_mode("bogus", Mode::kSuperstep), Mode::kSuperstep);
}

TEST(RuntimeOptions, ToStringRoundTrips) {
  EXPECT_EQ(to_string(Mode::kAsync), "async");
  EXPECT_EQ(to_string(Mode::kSuperstep), "superstep");
  EXPECT_EQ(to_string(TransportKind::kInProc), "inproc");
  EXPECT_EQ(to_string(TransportKind::kSocket), "socket");
}

TEST(RuntimeOptions, QuantizeRoundsUpToBarrierOnlyInSuperstep) {
  Options async;
  EXPECT_DOUBLE_EQ(async.quantize(3.14), 3.14);

  Options rounds;
  rounds.mode = Mode::kSuperstep;
  rounds.superstep_round_s = 2.0;
  EXPECT_DOUBLE_EQ(rounds.quantize(0.1), 2.0);
  EXPECT_DOUBLE_EQ(rounds.quantize(2.0), 2.0);  // on-barrier stays put
  EXPECT_DOUBLE_EQ(rounds.quantize(2.0001), 4.0);
  EXPECT_DOUBLE_EQ(rounds.quantize(0.0), 0.0);
}

TEST(RuntimeOptions, FromEnvReadsKnobs) {
  ::setenv("SEL_RUNTIME", "superstep", 1);
  ::setenv("SEL_TRANSPORT", "socket", 1);
  ::setenv("SEL_RUNTIME_ROUND_S", "0.25", 1);
  const auto opts = Options::from_env();
  ::unsetenv("SEL_RUNTIME");
  ::unsetenv("SEL_TRANSPORT");
  ::unsetenv("SEL_RUNTIME_ROUND_S");
  EXPECT_EQ(opts.mode, Mode::kSuperstep);
  EXPECT_EQ(opts.transport, TransportKind::kSocket);
  EXPECT_DOUBLE_EQ(opts.superstep_round_s, 0.25);

  const auto defaults = Options::from_env();
  EXPECT_EQ(defaults.mode, Mode::kAsync);
  EXPECT_EQ(defaults.transport, TransportKind::kInProc);
  EXPECT_DOUBLE_EQ(defaults.superstep_round_s, 1.0);
}

}  // namespace
}  // namespace sel::runtime
