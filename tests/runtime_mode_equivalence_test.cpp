// Cross-mode equivalence: the same protocol run under the event-driven
// (kAsync) and barrier-quantized (kSuperstep) runtimes must deliver the
// identical message multiset for the same seed.
//
// The equivalence boundary is deliberate: drop/duplicate/spike fates are a
// pure hash of (seed, msg, edge, attempt) — time-independent — so *what*
// happens to every hop is mode-invariant even though *when* differs.
// Stall/crash fates are drawn at arrival times and may diverge across
// modes by design; they are excluded here (and covered by the chaos suite
// per mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/fault.hpp"
#include "graph/profiles.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/multipath.hpp"
#include "runtime/runtime.hpp"
#include "select/protocol.hpp"

namespace sel::pubsub {
namespace {

using overlay::PeerId;

class ModeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 300, 5);
    net_ = std::make_unique<net::NetworkModel>(g_.num_nodes(), 5);
    sys_ = std::make_unique<core::SelectSystem>(g_, core::SelectParams{}, 5,
                                                net_.get());
    sys_->build();
    ps_ = std::make_unique<overlay::PubSubSystem>(*sys_);
  }

  struct Outcome {
    EngineStats stats;
    /// Message id -> delivered subscriber set: the delivery multiset (the
    /// dedup invariant makes per-message delivery a set).
    std::map<MessageId, std::set<PeerId>> delivered;
    std::map<MessageId, std::set<PeerId>> missed;
  };

  /// One fixed workload (10 publishers, staggered publishes) under the
  /// given runtime options and optional time-independent fault mix.
  Outcome run(runtime::Options opts, const fault::FaultSpec& spec,
              std::uint64_t seed) {
    std::unique_ptr<fault::FaultPlan> plan;
    NotificationEngine engine(*ps_, *net_);
    engine.set_runtime_options(opts);
    if (spec.any()) {
      plan = std::make_unique<fault::FaultPlan>(spec, seed, g_.num_nodes());
      engine.set_fault_plan(plan.get());
      RetryPolicy policy;
      policy.enabled = true;
      policy.ack_timeout_s = 2.0;
      engine.set_retry_policy(policy);
      engine.set_multipath_planner([this](PeerId b) {
        return plan_multipath(*sys_, g_, b);
      });
    }
    std::vector<MessageId> ids;
    for (PeerId p = 0; p < 10; ++p) {
      ids.push_back(engine.publish(p, static_cast<double>(p)));
    }
    engine.run_all();
    Outcome out;
    out.stats = engine.stats();
    for (const auto id : ids) {
      const auto& rec = engine.record(id);
      out.delivered[id] = std::set<PeerId>(rec.delivered_to.begin(),
                                           rec.delivered_to.end());
      out.missed[id] = std::set<PeerId>(rec.missed.begin(),
                                        rec.missed.end());
    }
    return out;
  }

  static runtime::Options async_opts() { return {}; }

  static runtime::Options superstep_opts(double round_s) {
    runtime::Options o;
    o.mode = runtime::Mode::kSuperstep;
    o.superstep_round_s = round_s;
    return o;
  }

  /// The time-independent chaos mix: drops force the full retry +
  /// failover ladder, duplicates exercise receiver dedup, spikes shift
  /// arrival times — none of them depend on *when* a hop lands.
  static fault::FaultSpec drop_dup_spike() {
    fault::FaultSpec spec;
    spec.drop = 0.08;
    spec.duplicate = 0.02;
    spec.spike = 0.02;
    spec.spike_factor = 3.0;
    return spec;
  }

  graph::SocialGraph g_;
  std::unique_ptr<net::NetworkModel> net_;
  std::unique_ptr<core::SelectSystem> sys_;
  std::unique_ptr<overlay::PubSubSystem> ps_;
};

TEST_F(ModeEquivalenceTest, PerfectPlaneDeliversIdenticallyInBothModes) {
  const auto async = run(async_opts(), {}, 1);
  const auto rounds = run(superstep_opts(0.5), {}, 1);
  EXPECT_GT(async.stats.deliveries, 0u);
  EXPECT_EQ(async.stats.deliveries, rounds.stats.deliveries);
  EXPECT_EQ(async.stats.wanted, rounds.stats.wanted);
  EXPECT_EQ(async.stats.relay_forwards, rounds.stats.relay_forwards);
}

TEST_F(ModeEquivalenceTest, SuperstepArrivalsLandOnRoundBarriers) {
  NotificationEngine engine(*ps_, *net_);
  const double round_s = 0.5;
  engine.set_runtime_options(superstep_opts(round_s));
  const auto id = engine.publish(0, 0.0);
  engine.run_all();
  const auto& rec = engine.record(id);
  EXPECT_EQ(rec.delivered, rec.wanted);
  ASSERT_TRUE(rec.completed_at_s.has_value());
  const double rounds = *rec.completed_at_s / round_s;
  EXPECT_NEAR(rounds, std::round(rounds), 1e-9)
      << "completion time " << *rec.completed_at_s
      << " is not on a round barrier";
  // Quantization can only delay: the async run completes no later.
  NotificationEngine async_engine(*ps_, *net_);
  const auto async_id = async_engine.publish(0, 0.0);
  async_engine.run_all();
  EXPECT_LE(*async_engine.record(async_id).completed_at_s,
            *rec.completed_at_s);
}

TEST_F(ModeEquivalenceTest, DropDupSpikeMixDeliversIdenticalMultiset) {
  const auto async = run(async_opts(), drop_dup_spike(), 42);
  const auto rounds = run(superstep_opts(0.5), drop_dup_spike(), 42);
  ASSERT_GT(async.stats.wanted, 0u);
  EXPECT_GT(async.stats.retries, 0u);
  // The acceptance property: same seed => identical delivered multiset,
  // message by message, subscriber by subscriber.
  EXPECT_EQ(async.delivered, rounds.delivered);
  EXPECT_EQ(async.missed, rounds.missed);
  EXPECT_EQ(async.stats.deliveries, rounds.stats.deliveries);
  EXPECT_EQ(async.stats.duplicates_suppressed,
            rounds.stats.duplicates_suppressed);
}

TEST_F(ModeEquivalenceTest, TieSeedStressDoesNotChangeDeliveredMultiset) {
  // Determinism stress: permuting equal-time event order (tie_seed) must
  // not change protocol outcomes, only accidental interleavings.
  auto seeded = async_opts();
  seeded.tie_seed = 0xfeedface;
  const auto fifo = run(async_opts(), drop_dup_spike(), 7);
  const auto permuted = run(seeded, drop_dup_spike(), 7);
  EXPECT_EQ(fifo.delivered, permuted.delivered);
  EXPECT_EQ(fifo.missed, permuted.missed);
  EXPECT_EQ(fifo.stats.deliveries, permuted.stats.deliveries);
}

TEST_F(ModeEquivalenceTest, SameSeedSameModeIsBitIdentical) {
  const auto a = run(superstep_opts(0.5), drop_dup_spike(), 9);
  const auto b = run(superstep_opts(0.5), drop_dup_spike(), 9);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.delivery_latency_s.mean(),
            b.stats.delivery_latency_s.mean());
  EXPECT_EQ(a.stats.delivery_latency_s.max(),
            b.stats.delivery_latency_s.max());
}

}  // namespace
}  // namespace sel::pubsub
