// SocketTransport smoke tests: shard servers in forked OS processes behind
// the wire codec. Each test spawns its shards FIRST — fork must precede any
// thread creation — and these tests keep the process thread-free (default
// inline Executor) throughout.
#include "runtime/socket_transport.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "graph/profiles.hpp"
#include "net/network_model.hpp"
#include "obs/report.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/mailbox.hpp"
#include "runtime/event_engine.hpp"
#include "select/protocol.hpp"

namespace sel::runtime {
namespace {

using overlay::PeerId;

TEST(ShardMap, PartitionsPeersByModulo) {
  const ShardMap map{4};
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(5), 1u);
  EXPECT_EQ(map.shard_of(7), 3u);
}

TEST(SocketTransport, RemoteAndLocalReceiverDrawsMatchThePlan) {
  // 2 processes: shard 0 (driver) hosts even peers, shard 1 (child) hosts
  // odd peers. A stall-everything plan must surface kStalled through both
  // the local draw and the kDeliver/kDeliverAck round-trip.
  fault::FaultSpec spec;
  spec.stall = 1.0;
  spec.stall_s = 5.0;
  auto shards = SpawnedShards::spawn_loopback(2, spec, 77, 16);

  EventEngine engine;
  net::NetworkModel net(16, 7);
  fault::FaultPlan driver_plan(spec, 77, 16);
  SocketTransport t(engine, net, shards, {}, &driver_plan);
  EXPECT_EQ(t.name(), "socket");

  const auto send_to = [&](std::uint32_t to) {
    Message m;
    m.msg = 1;
    m.from = 0;
    m.to = to;
    m.payload_bytes = 1000.0;
    m.send_s = engine.now_s();
    std::vector<Arrival> arrivals;
    const auto outcome = t.send(
        m, [&arrivals](const Arrival& a) { arrivals.push_back(a); });
    EXPECT_FALSE(outcome.dropped);
    engine.run();
    EXPECT_EQ(arrivals.size(), 1u);
    return arrivals.at(0);
  };

  const auto remote = send_to(1);  // odd peer -> shard 1, over the wire
  EXPECT_EQ(remote.receiver, fault::ReceiveState::kStalled);
  EXPECT_EQ(t.remote_deliveries(), 1u);

  const auto local = send_to(2);  // even peer -> shard 0, local draw
  EXPECT_EQ(local.receiver, fault::ReceiveState::kStalled);
  EXPECT_EQ(t.remote_deliveries(), 1u);

  EXPECT_TRUE(shards.shutdown());
}

TEST(SocketTransport, TwoProcessDisseminationDeliversEndToEnd) {
  // Full dissemination through the engine with peers split across two OS
  // processes, perfect wire: every wanted subscriber is reached and the
  // odd-peer arrivals actually crossed the socket.
  auto shards =
      SpawnedShards::spawn_loopback(2, fault::FaultSpec{}, 1, 1024);

  auto g = graph::make_dataset_graph(graph::profile_by_name("facebook"),
                                     300, 5);
  net::NetworkModel net(g.num_nodes(), 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  SocketTransport transport(engine.event_engine(), net, shards,
                            engine.runtime_options());
  engine.set_transport(&transport);

  std::vector<pubsub::MessageId> ids;
  for (PeerId p = 0; p < 5; ++p) {
    ids.push_back(engine.publish(p, static_cast<double>(p)));
  }
  engine.run_all();
  for (const auto id : ids) {
    const auto& rec = engine.record(id);
    EXPECT_GT(rec.wanted, 0u);
    EXPECT_EQ(rec.delivered, rec.wanted) << "message " << id;
  }
  EXPECT_GT(transport.remote_deliveries(), 0u);
  EXPECT_TRUE(shards.shutdown());
}

TEST(SocketTransport, ChaosRunMatchesInProcBackendBitForBit) {
  // Same seed, same fault plan parameters: the socket backend must produce
  // the identical protocol outcome as the in-process backend — receiver
  // draws happen in whichever process hosts the peer, but against the same
  // (spec, seed, num_peers) plan and in the same virtual-time order.
  fault::FaultSpec spec;
  spec.drop = 0.05;
  spec.duplicate = 0.01;
  spec.crash = 0.001;
  constexpr std::uint64_t kSeed = 42;
  auto shards = SpawnedShards::spawn_loopback(2, spec, kSeed, 1024);

  auto g = graph::make_dataset_graph(graph::profile_by_name("facebook"),
                                     300, 5);
  net::NetworkModel net(g.num_nodes(), 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);

  const auto run = [&](bool socket_backend) {
    fault::FaultPlan plan(spec, kSeed, g.num_nodes());
    pubsub::NotificationEngine engine(ps, net);
    engine.set_fault_plan(&plan);
    pubsub::RetryPolicy policy;
    policy.enabled = true;
    policy.ack_timeout_s = 2.0;
    engine.set_retry_policy(policy);
    std::unique_ptr<SocketTransport> transport;
    if (socket_backend) {
      transport = std::make_unique<SocketTransport>(
          engine.event_engine(), net, shards, engine.runtime_options(),
          &plan);
      engine.set_transport(transport.get());
    }
    for (PeerId p = 0; p < 10; ++p) {
      engine.publish(p, static_cast<double>(p));
    }
    engine.run_all();
    return engine.stats();
  };

  const auto inproc = run(false);
  const auto socket = run(true);
  EXPECT_EQ(socket.deliveries, inproc.deliveries);
  EXPECT_EQ(socket.wanted, inproc.wanted);
  EXPECT_EQ(socket.retries, inproc.retries);
  EXPECT_EQ(socket.failovers, inproc.failovers);
  EXPECT_EQ(socket.missed, inproc.missed);
  EXPECT_EQ(socket.duplicates_suppressed, inproc.duplicates_suppressed);
  EXPECT_EQ(socket.delivery_latency_s.count(),
            inproc.delivery_latency_s.count());
  EXPECT_EQ(socket.delivery_latency_s.mean(),
            inproc.delivery_latency_s.mean());

  // Shard servers outlive one engine run; their plans accumulate receiver
  // state (stall windows, crash set, draw sequence). reset_plans() must
  // restore them so a second same-seed run over the same fleet still
  // matches the in-process backend — without the reset, row 2 of a soak
  // diverges (the bug this guards against).
  shards.reset_plans();
  const auto again = run(true);
  EXPECT_EQ(again.deliveries, inproc.deliveries);
  EXPECT_EQ(again.missed, inproc.missed);
  EXPECT_EQ(again.retries, inproc.retries);
  EXPECT_EQ(again.delivery_latency_s.mean(),
            inproc.delivery_latency_s.mean());
  EXPECT_TRUE(shards.shutdown());
}

TEST(SocketTransport, LateCopyBeatsReplayAcrossShards) {
  // The rec.missed.erase race over the wire: a subscriber offline at
  // publish is queued for replay (and replicated to its mailbox), but the
  // publisher's stale cached tree still routes a copy — through shard
  // processes. The subscriber returns before the copy arrives; the copy
  // must win and both replay tiers must dedup against it. Mirrors the
  // in-process variant in pubsub_mailbox_test.cpp.
  const check::ScopedLevel full(check::Level::kFull);
  auto shards = SpawnedShards::spawn_loopback(2, fault::FaultSpec{}, 11, 1024);

  auto g = graph::make_dataset_graph(graph::profile_by_name("facebook"),
                                     300, 5);
  net::NetworkModel net(g.num_nodes(), 5);
  core::SelectSystem sys(g, core::SelectParams{}, 5, &net);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  pubsub::RetryPolicy policy;
  policy.enabled = true;
  engine.set_retry_policy(policy);
  SocketTransport transport(engine.event_engine(), net, shards,
                            engine.runtime_options());
  engine.set_transport(&transport);
  pubsub::MailboxManager mailbox(engine.event_engine(), sys, net,
                                 pubsub::MailboxPolicy{}, 11);
  engine.set_mailbox(&mailbox);

  const auto subs = ps.subscribers_of(0);
  ASSERT_FALSE(subs.empty());
  const PeerId racer = *subs.begin();

  // Warm the per-publisher tree cache with everyone online.
  const auto id1 = engine.publish(0, 0.0);
  engine.run_all();
  ASSERT_TRUE(engine.record(id1).delivered_to.contains(racer));

  sys.set_peer_online(racer, false);
  const double t2 = engine.now_s() + 10.0;
  const auto id2 = engine.publish(0, t2);  // stale cache: copy still sent
  EXPECT_EQ(engine.pending_replays(), 1u);
  EXPECT_EQ(mailbox.stats().replicated, 1u);

  engine.run_until(t2);
  sys.set_peer_online(racer, true);  // back before the copy's arrival
  engine.run_all();

  const auto& rec = engine.record(id2);
  EXPECT_TRUE(rec.delivered_to.contains(racer));
  EXPECT_TRUE(rec.missed.empty());
  EXPECT_EQ(mailbox.stats().superseded, 1u);
  EXPECT_EQ(engine.replay_missed(racer, engine.now_s()), 0u);
  EXPECT_EQ(engine.stats().replays, 0u);
  EXPECT_EQ(engine.stats().mailbox_replays, 0u);
  EXPECT_GT(transport.remote_deliveries(), 0u);
  EXPECT_TRUE(shards.shutdown());
}

TEST(SocketTransport, SnapshotMergeIsDeterministicAndComplete) {
  // Three processes (driver + 2 children). After traffic drains, the
  // drivers-side merge must be (a) ascending by shard id, (b) byte-stable
  // across repeated fetches of a quiescent fleet, and (c) exactly the sum
  // of the per-shard counter snapshots — the property the single merged
  // bench report rides on.
  fault::FaultSpec spec;
  spec.stall = 1.0;
  spec.stall_s = 5.0;
  auto shards = SpawnedShards::spawn_loopback(3, spec, 9, 32);

  EventEngine engine;
  net::NetworkModel net(32, 3);
  fault::FaultPlan plan(spec, 9, 32);
  SocketTransport t(engine, net, shards, {}, &plan);
  for (std::uint32_t to = 1; to <= 8; ++to) {
    Message m;
    m.msg = to;
    m.from = 0;
    m.to = to;
    m.payload_bytes = 100.0;
    m.send_s = engine.now_s();
    t.send(m, [](const Arrival&) {});
  }
  engine.run();
  EXPECT_GT(t.remote_deliveries(), 0u);

  const auto snaps = shards.fetch_snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].first, 1u);
  EXPECT_EQ(snaps[1].first, 2u);

  // Quiescent fleet: a second fetch returns byte-identical protocol state.
  // Gauges are excluded — the child re-polls RSS per request, and resident
  // bytes may legitimately move between polls.
  const auto again = shards.fetch_snapshots();
  ASSERT_EQ(again.size(), 2u);
  const auto stable_dump = [](obs::Snapshot s) {
    s.gauges.clear();
    return obs::snapshot_to_json(s).dump();
  };
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(stable_dump(snaps[i].second), stable_dump(again[i].second));
  }

  // Same snapshots merged in the same order -> identical serialized state.
  const auto merge_all = [&snaps] {
    obs::MetricsRegistry reg;
    for (const auto& [shard, snap] : snaps) {
      reg.merge_snapshot(snap, shard);
    }
    return obs::snapshot_to_json(reg.snapshot()).dump();
  };
  EXPECT_EQ(merge_all(), merge_all());

  // collect_snapshots into a fresh registry: counters are exactly the
  // per-shard sums, per-shard memory arrives namespaced, and the fleet
  // size is published.
  obs::MetricsRegistry reg;
  EXPECT_EQ(shards.collect_snapshots(reg), 2u);
  const auto merged = reg.snapshot();
  std::map<std::string, std::int64_t> want;
  for (const auto& [shard, snap] : snaps) {
    (void)shard;
    for (const auto& c : snap.counters) want[c.name] += c.value;
  }
  want["runtime.shard.snapshots_merged"] += 2;
  for (const auto& c : merged.counters) {
    EXPECT_EQ(c.value, want[c.name]) << c.name;
  }
  double shard1_rss = 0.0;
  double shard_count = 0.0;
  for (const auto& g : merged.gauges) {
    if (g.name == "mem.shard1.rss_bytes") shard1_rss = g.value;
    if (g.name == "runtime.shard.count") shard_count = g.value;
  }
  EXPECT_GT(shard1_rss, 0.0);
  EXPECT_DOUBLE_EQ(shard_count, 3.0);

  EXPECT_TRUE(shards.shutdown());
}

}  // namespace
}  // namespace sel::runtime
