// Transport-plane unit tests: the wire codec (framing, truncation,
// loopback I/O) and the InProcTransport contract — arrival scheduling at
// NetworkModel transfer times, fault fates per hop, superstep quantization.
#include "runtime/transport.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "fault/fault.hpp"
#include "net/network_model.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/wire.hpp"

namespace sel::runtime {
namespace {

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(Wire, HelloRoundTrips) {
  const wire::Hello h{3, 8, 1000};
  const auto buf = wire::encode(h);
  wire::FrameType type{};
  ASSERT_TRUE(wire::frame_type(buf, type));
  EXPECT_EQ(type, wire::FrameType::kHello);
  wire::Hello back;
  ASSERT_TRUE(wire::decode(buf, back));
  EXPECT_EQ(back.shard, 3u);
  EXPECT_EQ(back.num_shards, 8u);
  EXPECT_EQ(back.num_peers, 1000u);
}

TEST(Wire, DeliverRoundTrips) {
  wire::Deliver d;
  d.msg = 0xdeadbeefcafeULL;
  d.from = 12;
  d.to = 999;
  d.arrive_s = 123.456;
  wire::Deliver back;
  ASSERT_TRUE(wire::decode(wire::encode(d), back));
  EXPECT_EQ(back.msg, d.msg);
  EXPECT_EQ(back.from, d.from);
  EXPECT_EQ(back.to, d.to);
  EXPECT_DOUBLE_EQ(back.arrive_s, d.arrive_s);
}

TEST(Wire, DeliverAckRoundTrips) {
  wire::DeliverAck a;
  a.msg = 77;
  a.to = 5;
  a.receiver_state = static_cast<std::uint8_t>(fault::ReceiveState::kStalled);
  wire::DeliverAck back;
  ASSERT_TRUE(wire::decode(wire::encode(a), back));
  EXPECT_EQ(back.msg, 77u);
  EXPECT_EQ(back.to, 5u);
  EXPECT_EQ(back.receiver_state, a.receiver_state);
}

TEST(Wire, DecodeRejectsTruncatedMistypedAndOversizedPayloads) {
  const auto buf = wire::encode(wire::Deliver{1, 2, 3, 4.0});
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<std::uint8_t> truncated(buf.begin(),
                                        buf.begin() + static_cast<long>(cut));
    wire::Deliver out;
    EXPECT_FALSE(wire::decode(truncated, out)) << "cut at " << cut;
  }
  // Trailing garbage is a protocol error too (frames are fixed-shape).
  auto padded = buf;
  padded.push_back(0);
  wire::Deliver out;
  EXPECT_FALSE(wire::decode(padded, out));
  // A Deliver payload does not decode as a Hello.
  wire::Hello hello;
  EXPECT_FALSE(wire::decode(buf, hello));
  wire::FrameType type{};
  EXPECT_FALSE(wire::frame_type({}, type));
  EXPECT_FALSE(wire::frame_type({0xff}, type));
}

TEST(Wire, FramesRoundTripOverSocketpair) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const auto out = wire::encode(wire::Deliver{42, 1, 2, 9.5});
  ASSERT_EQ(wire::write_frame(pair[0], out), wire::IoStatus::kOk);
  ASSERT_EQ(wire::write_frame(pair[0], wire::encode_shutdown()),
            wire::IoStatus::kOk);
  std::vector<std::uint8_t> in;
  ASSERT_EQ(wire::read_frame(pair[1], in), wire::IoStatus::kOk);
  EXPECT_EQ(in, out);
  ASSERT_EQ(wire::read_frame(pair[1], in), wire::IoStatus::kOk);
  wire::FrameType type{};
  ASSERT_TRUE(wire::frame_type(in, type));
  EXPECT_EQ(type, wire::FrameType::kShutdown);
  // Peer closes: a clean EOF at a frame boundary reads as kClosed.
  ::close(pair[0]);
  EXPECT_EQ(wire::read_frame(pair[1], in), wire::IoStatus::kClosed);
  ::close(pair[1]);
}

TEST(Wire, OversizedFrameIsRejectedBeforeAllocation) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  // A length prefix past kMaxFrameBytes must error out without resizing the
  // buffer to the bogus length.
  const std::uint32_t bogus = wire::kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(bogus >> (8 * i));
  }
  ASSERT_EQ(::write(pair[0], prefix, sizeof(prefix)),
            static_cast<ssize_t>(sizeof(prefix)));
  std::vector<std::uint8_t> in;
  EXPECT_EQ(wire::read_frame(pair[1], in), wire::IoStatus::kError);
  ::close(pair[0]);
  ::close(pair[1]);
}

// ---------------------------------------------------------------------------
// InProcTransport.
// ---------------------------------------------------------------------------

class InProcTransportTest : public ::testing::Test {
 protected:
  static Message hop(std::uint64_t msg, std::uint32_t from, std::uint32_t to,
                     double send_s) {
    Message m;
    m.msg = msg;
    m.from = from;
    m.to = to;
    m.payload_bytes = 1000.0;
    m.send_s = send_s;
    return m;
  }

  net::NetworkModel net_{16, 7};
};

TEST_F(InProcTransportTest, ArrivalLandsAtTransferTime) {
  EventEngine engine;
  InProcTransport t(engine, net_);
  std::vector<Arrival> arrivals;
  const auto outcome = t.send(
      hop(1, 0, 1, 0.0), [&arrivals](const Arrival& a) {
        arrivals.push_back(a);
      });
  EXPECT_FALSE(outcome.dropped);
  EXPECT_EQ(outcome.copies, 1u);
  const double expected = net_.transfer_time_s(0, 1, 1000.0, 1);
  EXPECT_DOUBLE_EQ(outcome.arrive_s, expected);
  // Never synchronous: the completion fires from the event engine.
  ASSERT_TRUE(arrivals.empty());
  engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0].arrive_s, expected);
  EXPECT_EQ(arrivals[0].receiver, fault::ReceiveState::kOk);
}

TEST_F(InProcTransportTest, DroppedHopProducesNoArrival) {
  EventEngine engine;
  fault::FaultSpec spec;
  spec.drop = 1.0;
  fault::FaultPlan plan(spec, 11, 16);
  InProcTransport t(engine, net_, {}, &plan);
  int arrivals = 0;
  const auto outcome =
      t.send(hop(1, 0, 1, 0.0), [&arrivals](const Arrival&) { ++arrivals; });
  EXPECT_TRUE(outcome.dropped);
  EXPECT_EQ(outcome.copies, 0u);
  EXPECT_GT(outcome.arrive_s, 0.0);  // when it would have landed
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_EQ(arrivals, 0);
}

TEST_F(InProcTransportTest, DuplicatedHopArrivesTwiceUnlessCollapsed) {
  EventEngine engine;
  fault::FaultSpec spec;
  spec.duplicate = 1.0;
  fault::FaultPlan plan(spec, 11, 16);
  InProcTransport t(engine, net_, {}, &plan);
  int arrivals = 0;
  const auto outcome =
      t.send(hop(1, 0, 1, 0.0), [&arrivals](const Arrival&) { ++arrivals; });
  EXPECT_EQ(outcome.copies, 2u);
  engine.run();
  EXPECT_EQ(arrivals, 2);

  auto collapsed_hop = hop(2, 0, 1, engine.now_s());
  collapsed_hop.collapse_duplicates = true;
  int collapsed = 0;
  const auto c = t.send(collapsed_hop,
                        [&collapsed](const Arrival&) { ++collapsed; });
  EXPECT_EQ(c.copies, 1u);
  engine.run();
  EXPECT_EQ(collapsed, 1);
}

TEST_F(InProcTransportTest, ReceiverStateIsDrawnAtArrival) {
  EventEngine engine;
  fault::FaultSpec spec;
  spec.stall = 1.0;
  spec.stall_s = 5.0;
  fault::FaultPlan plan(spec, 11, 16);
  InProcTransport t(engine, net_, {}, &plan);
  std::vector<Arrival> arrivals;
  t.send(hop(1, 0, 1, 0.0),
         [&arrivals](const Arrival& a) { arrivals.push_back(a); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].receiver, fault::ReceiveState::kStalled);
}

TEST_F(InProcTransportTest, SuperstepModeQuantizesArrivalToBarrier) {
  EventEngine engine;
  Options opts;
  opts.mode = Mode::kSuperstep;
  opts.superstep_round_s = 10.0;
  InProcTransport t(engine, net_, opts);
  std::vector<Arrival> arrivals;
  const auto outcome = t.send(
      hop(1, 0, 1, 0.0),
      [&arrivals](const Arrival& a) { arrivals.push_back(a); });
  // Any realistic transfer of 1000 bytes lands within the first barrier.
  EXPECT_DOUBLE_EQ(outcome.arrive_s, 10.0);
  engine.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0].arrive_s, 10.0);
}

TEST_F(InProcTransportTest, UplinkShareSlowsTransfers) {
  EventEngine engine;
  InProcTransport t(engine, net_);
  auto shared = hop(1, 0, 1, 0.0);
  shared.uplink_share = 4;
  const auto slow = t.send(shared, [](const Arrival&) {});
  const auto fast = t.send(hop(2, 0, 1, 0.0), [](const Arrival&) {});
  EXPECT_GT(slow.arrive_s, fast.arrive_s);
  engine.run();
}

}  // namespace
}  // namespace sel::runtime
