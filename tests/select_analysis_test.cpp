#include "select/analysis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/profiles.hpp"
#include "select/protocol.hpp"

namespace sel::core {
namespace {

using overlay::PeerId;

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 400, 9);
    sys_ = std::make_unique<SelectSystem>(g_, SelectParams{}, 9);
    sys_->build();
  }

  graph::SocialGraph g_;
  std::unique_ptr<SelectSystem> sys_;
};

TEST_F(AnalysisTest, FriendCoverageIsMostlyTwoHops) {
  const auto report =
      friend_coverage(sys_->overlay(), g_, 400, 1, overlay::RouteOptions{});
  EXPECT_GT(report.one_hop_fraction + report.two_hop_fraction, 0.7);
  EXPECT_NEAR(report.one_hop_fraction + report.two_hop_fraction +
                  report.beyond_fraction,
              1.0, 1e-9);
  EXPECT_GT(report.avg_hops, 0.9);
  EXPECT_LT(report.avg_hops, 3.0);
}

TEST_F(AnalysisTest, IdClustersFormAfterSelect) {
  const auto clusters = id_clusters(sys_->overlay(), 0.02);
  ASSERT_FALSE(clusters.empty());
  std::size_t covered = 0;
  for (const auto& c : clusters) covered += c.size;
  EXPECT_EQ(covered, g_.num_nodes());
  // Far fewer clusters than peers: communities condensed.
  EXPECT_LT(clusters.size(), g_.num_nodes() / 4);
}

TEST_F(AnalysisTest, RingIsSociallyCoherent) {
  const double coherence = ring_social_coherence(sys_->overlay(), g_);
  // After reassignment, ring neighbours share social context far more than
  // uniform placement (~0.25 on this graph). Holme-Kim graphs have weak
  // community structure, so the absolute value stays moderate.
  EXPECT_GT(coherence, 0.3);
}

TEST_F(AnalysisTest, RingCoherenceLowWithoutReassignment) {
  SelectParams off;
  off.enable_id_reassignment = false;
  off.enable_invite_projection = false;  // fully uniform ids
  SelectSystem frozen(g_, off, 11);
  frozen.build();
  const double frozen_coherence =
      ring_social_coherence(frozen.overlay(), g_);
  const double select_coherence = ring_social_coherence(sys_->overlay(), g_);
  EXPECT_GT(select_coherence, frozen_coherence);
}

TEST_F(AnalysisTest, LinkStrengthLiftAboveOne) {
  // Long links are social ties, far stronger than random peer pairs (the
  // picker optimizes coverage among friends, so the lift vs random *friend*
  // pairs would be near 1 — the baseline here is random peers).
  EXPECT_GT(link_strength_lift(sys_->overlay(), g_, 13), 1.2);
}

TEST(IdClusters, UniformIdsGiveManyClustersAtTinyThreshold) {
  overlay::RingSubstrate ov(64);
  for (PeerId p = 0; p < 64; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / 64.0));
  }
  ov.rebuild_ring();
  // Gaps are all 1/64 ~ 0.0156: threshold below that splits everywhere.
  EXPECT_EQ(id_clusters(ov, 0.01).size(), 64u);
  // Threshold above merges everything into one cluster.
  EXPECT_EQ(id_clusters(ov, 0.02).size(), 1u);
}

TEST(IdClusters, EmptyOverlay) {
  overlay::RingSubstrate ov(4);
  EXPECT_TRUE(id_clusters(ov, 0.1).empty());
}

TEST(DegreeRewire, PreservesDegreesDestroysClustering) {
  const auto g = graph::holme_kim(800, 5, 0.8, 21);
  const auto rewired = graph::degree_preserving_rewire(g, 10.0, 21);
  ASSERT_EQ(rewired.num_nodes(), g.num_nodes());
  EXPECT_EQ(rewired.num_edges(), g.num_edges());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(rewired.degree(u), g.degree(u)) << "degree changed at " << u;
  }
  const double c_before = graph::clustering_coefficient(g, 400, 1);
  const double c_after = graph::clustering_coefficient(rewired, 400, 1);
  EXPECT_LT(c_after, c_before / 3.0);
}

TEST(DegreeRewire, ZeroSwapsIsIdentityStructure) {
  const auto g = graph::holme_kim(200, 3, 0.5, 23);
  const auto same = graph::degree_preserving_rewire(g, 0.0, 23);
  EXPECT_EQ(same.num_edges(), g.num_edges());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(same.degree(u), g.degree(u));
  }
}

TEST(DegreeRewire, Deterministic) {
  const auto g = graph::holme_kim(300, 4, 0.6, 25);
  const auto a = graph::degree_preserving_rewire(g, 5.0, 7);
  const auto b = graph::degree_preserving_rewire(g, 5.0, 7);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

}  // namespace
}  // namespace sel::core
