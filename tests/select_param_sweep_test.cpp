// Parameter-space sweep: SELECT's invariants and headline behaviour must
// hold across its whole tunable range, not just the defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

namespace sel::core {
namespace {

using overlay::PeerId;

// (k_links, id_damping, lsh_bits, exchanges_per_round)
using ParamTuple = std::tuple<std::size_t, double, std::size_t, std::size_t>;

class SelectParamSweep : public ::testing::TestWithParam<ParamTuple> {
 protected:
  SelectParams make_params() const {
    const auto& [k, damping, bits, exchanges] = GetParam();
    SelectParams p;
    p.k_links = k;
    p.id_damping = damping;
    p.lsh_bits_per_hash = bits;
    p.exchanges_per_round = exchanges;
    return p;
  }
};

TEST_P(SelectParamSweep, BuildsRoutesAndRespectsBudgets) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 300, 77);
  SelectSystem sys(g, make_params(), 77);
  sys.build();
  const std::size_t k = sys.k();
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    ASSERT_LE(sys.overlay().out_degree(p), k);
    ASSERT_LE(sys.overlay().in_degree(p), k);
  }
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 150, 77);
  EXPECT_GT(hops.success_rate(), 0.98);
  EXPECT_LT(hops.hops.mean(), 5.0);
}

TEST_P(SelectParamSweep, DeterministicAcrossRuns) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("slashdot"), 250, 78);
  SelectSystem a(g, make_params(), 78);
  SelectSystem b(g, make_params(), 78);
  a.build();
  b.build();
  EXPECT_EQ(a.build_iterations(), b.build_iterations());
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    ASSERT_DOUBLE_EQ(a.overlay().id(p).value(), b.overlay().id(p).value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamSpace, SelectParamSweep,
    ::testing::Values(ParamTuple{0, 0.8, 12, 3},   // defaults
                      ParamTuple{4, 0.8, 12, 3},   // small link budget
                      ParamTuple{16, 0.8, 12, 3},  // large link budget
                      ParamTuple{0, 1.0, 12, 3},   // Alg. 2 literal (no damping)
                      ParamTuple{0, 0.3, 12, 3},   // heavy damping
                      ParamTuple{0, 0.8, 4, 3},    // coarse LSH hashes
                      ParamTuple{0, 0.8, 24, 3},   // fine LSH hashes
                      ParamTuple{0, 0.8, 12, 1},   // one gossip/round
                      ParamTuple{0, 0.8, 12, 6})); // aggressive gossip

TEST(SelectSmallWorlds, TinyNetworksWork) {
  // Degenerate sizes: the protocol must not fall over on toy networks.
  for (const std::size_t n : {3u, 8u, 17u, 33u}) {
    const auto g = graph::make_dataset_graph(
        graph::profile_by_name("slashdot"), n, 79);
    SelectSystem sys(g, SelectParams{}, 79);
    sys.build();
    const overlay::PubSubSystem ps(sys);
    const auto hops = pubsub::measure_hops(ps, 50, 79);
    EXPECT_GT(hops.success_rate(), 0.9) << "n=" << n;
  }
}

TEST(SelectSmallWorlds, SingleAndTwoPeerNetworks) {
  {
    graph::GraphBuilder b(1);
    const auto g = b.build();
    SelectSystem sys(g, SelectParams{}, 80);
    sys.build();  // must not crash or hang
    EXPECT_TRUE(sys.overlay().joined(0));
  }
  {
    graph::GraphBuilder b(2);
    b.add_edge(0, 1);
    const auto g = b.build();
    SelectSystem sys(g, SelectParams{}, 81);
    sys.build();
    const auto r = sys.route(0, 1);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.hops(), 1u);
  }
}

TEST(SelectSmallWorlds, DisconnectedGraphStillServesComponents) {
  // Two disjoint communities: each publisher reaches its own component.
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  }
  for (graph::NodeId u = 6; u < 12; ++u) {
    for (graph::NodeId v = u + 1; v < 12; ++v) b.add_edge(u, v);
  }
  const auto g = b.build();
  SelectSystem sys(g, SelectParams{}, 82);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto tree = ps.build_tree(0);
  const auto subs = ps.subscribers_of(0);
  for (const PeerId s : subs) {
    EXPECT_TRUE(tree.contains(s)) << s;
  }
}

}  // namespace
}  // namespace sel::core
