#include "select/protocol.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/profiles.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "pubsub/metrics.hpp"

namespace sel::core {
namespace {

using overlay::PeerId;

graph::SocialGraph fb_graph(std::size_t n, std::uint64_t seed) {
  return graph::make_dataset_graph(graph::profile_by_name("facebook"), n, seed);
}

TEST(SelectJoin, AllPeersJoinWithValidIds) {
  const auto g = fb_graph(300, 1);
  SelectSystem sys(g, SelectParams{}, 1);
  sys.join_all();
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    EXPECT_TRUE(sys.overlay().joined(p));
    EXPECT_GE(sys.overlay().id(p).value(), 0.0);
    EXPECT_LT(sys.overlay().id(p).value(), 1.0);
  }
}

TEST(SelectJoin, InitialLinksRespectBudget) {
  const auto g = fb_graph(300, 2);
  SelectSystem sys(g, SelectParams{}, 2);
  sys.join_all();
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    EXPECT_LE(sys.overlay().out_degree(p), sys.k());
    EXPECT_LE(sys.overlay().in_degree(p), sys.k());
  }
}

TEST(SelectJoin, InitialLinksAreSocial) {
  const auto g = fb_graph(300, 3);
  SelectSystem sys(g, SelectParams{}, 3);
  sys.join_all();
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    for (const PeerId q : sys.overlay().out_links(p)) {
      EXPECT_TRUE(g.has_edge(p, q)) << p << " -> " << q;
    }
  }
}

TEST(SelectParamsDefaults, KDefaultsToLog2N) {
  const auto g = fb_graph(256, 4);
  SelectSystem sys(g, SelectParams{}, 4);
  EXPECT_EQ(sys.k(), 8u);
  SelectParams custom;
  custom.k_links = 5;
  SelectSystem sys2(g, custom, 4);
  EXPECT_EQ(sys2.k(), 5u);
}

TEST(SelectBuild, ConvergesBeforeRoundCap) {
  const auto g = fb_graph(400, 5);
  SelectSystem sys(g, SelectParams{}, 5);
  sys.build();
  EXPECT_LT(sys.build_iterations(), SelectParams{}.max_rounds);
  EXPECT_TRUE(sys.converged());
}

TEST(SelectBuild, RoundsToStableIdsTracksMovement) {
  auto& sampler = obs::RoundSampler::global();
  sampler.reset();
  const auto g = fb_graph(300, 9);
  SelectSystem sys(g, SelectParams{}, 9);
  sys.build();

  // One time-series point per protocol round was sampled during build.
  std::size_t select_points = 0;
  for (const auto& p : sampler.snapshot()) {
    if (p.label == "select.round") ++select_points;
  }
  EXPECT_EQ(select_points, sys.build_iterations());

  // Identifier movement (Alg. 2) decays as the overlay stabilizes: the
  // first rounds move ids (stable_after > 0) and the metric can never
  // exceed the number of movement-carrying rounds.
  const auto stable_after = sampler.rounds_to_stable_ids();
  EXPECT_GT(stable_after, 0u);
  EXPECT_LE(stable_after, sys.build_iterations());
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::global().gauge("select.rounds_to_stable_ids")
          .value(),
      static_cast<double>(stable_after));
  sampler.reset();
}

TEST(SelectBuild, LinksStaySocialAfterConvergence) {
  const auto g = fb_graph(400, 6);
  SelectSystem sys(g, SelectParams{}, 6);
  sys.build();
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    EXPECT_LE(sys.overlay().out_degree(p), sys.k());
    EXPECT_LE(sys.overlay().in_degree(p), sys.k());
    for (const PeerId q : sys.overlay().out_links(p)) {
      EXPECT_TRUE(g.has_edge(p, q));
    }
  }
}

TEST(SelectBuild, GossipLearnsSocialStrength) {
  const auto g = fb_graph(300, 7);
  SelectSystem sys(g, SelectParams{}, 7);
  sys.build();
  // After convergence most peers know the strength of at least one friend,
  // and every known strength matches the graph truth.
  std::size_t known = 0;
  std::size_t checked = 0;
  for (PeerId p = 0; p < g.num_nodes() && checked < 2000; ++p) {
    for (const PeerId q : g.neighbors(p)) {
      ++checked;
      const double s = sys.known_strength(p, q);
      if (s >= 0.0) {
        ++known;
        EXPECT_DOUBLE_EQ(s, g.social_strength(p, q));
      }
    }
  }
  EXPECT_GT(known, checked / 4);
}

TEST(SelectBuild, ClustersSociallyConnectedPeers) {
  const auto g = fb_graph(400, 8);
  SelectSystem sys(g, SelectParams{}, 8);
  sys.join_all();
  // Average ring distance between friends before vs after reassignment.
  auto avg_friend_distance = [&] {
    double total = 0.0;
    std::size_t count = 0;
    for (PeerId p = 0; p < g.num_nodes(); ++p) {
      for (const PeerId q : g.neighbors(p)) {
        if (q > p) {
          total += net::ring_distance(sys.overlay().id(p),
                                      sys.overlay().id(q));
          ++count;
        }
      }
    }
    return total / static_cast<double>(count);
  };
  const double before = avg_friend_distance();
  sys.run_to_convergence();
  const double after = avg_friend_distance();
  EXPECT_LT(after, before * 0.8);
}

TEST(SelectBuild, Deterministic) {
  const auto g = fb_graph(250, 9);
  SelectSystem a(g, SelectParams{}, 9);
  SelectSystem b(g, SelectParams{}, 9);
  a.build();
  b.build();
  EXPECT_EQ(a.build_iterations(), b.build_iterations());
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    EXPECT_DOUBLE_EQ(a.overlay().id(p).value(), b.overlay().id(p).value());
    EXPECT_EQ(a.overlay().out_degree(p), b.overlay().out_degree(p));
  }
}

TEST(SelectRouting, SocialLookupsSucceedWithFewHops) {
  const auto g = fb_graph(500, 10);
  SelectSystem sys(g, SelectParams{}, 10);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 300, 10);
  EXPECT_DOUBLE_EQ(hops.success_rate(), 1.0);
  EXPECT_LT(hops.hops.mean(), 3.0);  // paper: friends 1-2 hops away
}

TEST(SelectTree, CoversSubscribersWithFewRelays) {
  const auto g = fb_graph(500, 11);
  SelectSystem sys(g, SelectParams{}, 11);
  sys.build();
  std::vector<PeerId> publishers;
  for (PeerId p = 0; p < 25; ++p) publishers.push_back(p * 17 % 500);
  const overlay::PubSubSystem ps(sys);
  const auto relays = pubsub::measure_relays(ps, publishers);
  EXPECT_GT(relays.coverage.mean(), 0.99);
  EXPECT_LT(relays.relays_per_path.mean(), 0.5);
}

TEST(SelectAblation, NoIdReassignmentHurtsClustering) {
  const auto g = fb_graph(400, 12);
  SelectParams off;
  off.enable_id_reassignment = false;
  SelectSystem frozen(g, off, 12);
  frozen.build();
  SelectSystem moving(g, SelectParams{}, 12);
  moving.build();
  auto friend_distance = [&g](const SelectSystem& sys) {
    double total = 0.0;
    std::size_t count = 0;
    for (PeerId p = 0; p < g.num_nodes(); ++p) {
      for (const PeerId q : g.neighbors(p)) {
        if (q > p) {
          total += net::ring_distance(sys.overlay().id(p),
                                      sys.overlay().id(q));
          ++count;
        }
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_LT(friend_distance(moving), friend_distance(frozen));
}

TEST(SelectAblation, RandomLinksStillBuildUsableOverlay) {
  const auto g = fb_graph(300, 13);
  SelectParams no_lsh;
  no_lsh.enable_lsh_selection = false;
  SelectSystem sys(g, no_lsh, 13);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 200, 13);
  EXPECT_GT(hops.success_rate(), 0.95);
}

TEST(SelectProjection, InvitedPeersLandNearInviter) {
  // Invited peers split their inviter's ring gap, so invitation subtrees
  // stay regional. We verify the aggregate effect: immediately after
  // join_all (no reassignment yet), friends are already closer than random
  // placement (0.25 expected ring distance).
  const auto g = fb_graph(400, 14);
  SelectSystem sys(g, SelectParams{}, 14);
  sys.join_all();
  double total = 0.0;
  std::size_t count = 0;
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    for (const PeerId q : g.neighbors(p)) {
      if (q > p) {
        total += net::ring_distance(sys.overlay().id(p), sys.overlay().id(q));
        ++count;
      }
    }
  }
  EXPECT_LT(total / static_cast<double>(count), 0.20);
}

TEST(SelectRouteOptions, TreeRespectsOfflineSubscribers) {
  const auto g = fb_graph(300, 15);
  SelectSystem sys(g, SelectParams{}, 15);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const PeerId publisher = 0;
  const auto subs = ps.subscribers_of(publisher);
  ASSERT_FALSE(subs.empty());
  const PeerId victim = *subs.begin();
  sys.set_peer_online(victim, false);
  const auto tree = ps.build_tree(publisher);
  EXPECT_FALSE(tree.contains(victim));
}

}  // namespace
}  // namespace sel::core
