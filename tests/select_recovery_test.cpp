#include <gtest/gtest.h>

#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/cma.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace sel::core {
namespace {

using overlay::PeerId;

TEST(Cma, FreshPeerIsOptimistic) {
  Cma cma;
  EXPECT_DOUBLE_EQ(cma.value(), 1.0);
  EXPECT_EQ(cma.samples(), 0u);
}

TEST(Cma, CumulativeAverageMath) {
  Cma cma;
  cma.update(true);
  EXPECT_DOUBLE_EQ(cma.value(), 1.0);
  cma.update(false);
  EXPECT_DOUBLE_EQ(cma.value(), 0.5);
  cma.update(false);
  EXPECT_NEAR(cma.value(), 1.0 / 3.0, 1e-12);
  cma.update(true);
  EXPECT_DOUBLE_EQ(cma.value(), 0.5);
  EXPECT_EQ(cma.samples(), 4u);
}

TEST(Cma, ConvergesToLongRunAvailability) {
  Cma cma;
  for (int i = 0; i < 1000; ++i) cma.update(i % 4 != 0);  // 75% online
  EXPECT_NEAR(cma.value(), 0.75, 0.01);
}

class SelectRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::make_dataset_graph(graph::profile_by_name("facebook"), 400, 21);
    sys_ = std::make_unique<SelectSystem>(g_, SelectParams{}, 21);
    sys_->build();
  }

  graph::SocialGraph g_;
  std::unique_ptr<SelectSystem> sys_;
};

TEST_F(SelectRecoveryTest, MaintenanceSamplesCma) {
  EXPECT_DOUBLE_EQ(sys_->cma_of(0), 1.0);  // no samples yet
  sys_->set_peer_online(0, false);
  sys_->maintenance_round();
  EXPECT_LT(sys_->cma_of(0), 1.0);
  sys_->set_peer_online(0, true);
  sys_->maintenance_round();
  EXPECT_DOUBLE_EQ(sys_->cma_of(0), 0.5);
}

TEST_F(SelectRecoveryTest, LowCmaOfflineLinksAreReplaced) {
  // Make peer X chronically offline so its CMA sinks below the threshold.
  PeerId victim = overlay::kInvalidPeer;
  for (PeerId p = 0; p < g_.num_nodes(); ++p) {
    if (sys_->overlay().in_degree(p) >= 2) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, overlay::kInvalidPeer);
  sys_->set_peer_online(victim, false);
  for (int round = 0; round < 6; ++round) sys_->maintenance_round();
  EXPECT_LT(sys_->cma_of(victim), SelectParams{}.cma_keep_threshold);
  // All links into the chronically offline peer have been reassigned.
  EXPECT_EQ(sys_->overlay().in_degree(victim), 0u);
}

TEST_F(SelectRecoveryTest, HighCmaOfflineLinksAreKept) {
  PeerId victim = overlay::kInvalidPeer;
  for (PeerId p = 0; p < g_.num_nodes(); ++p) {
    if (sys_->overlay().in_degree(p) >= 2) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, overlay::kInvalidPeer);
  // Build a long online history first.
  for (int round = 0; round < 20; ++round) sys_->maintenance_round();
  const std::size_t before = sys_->overlay().in_degree(victim);
  sys_->set_peer_online(victim, false);
  sys_->maintenance_round();  // one transient failure
  EXPECT_GE(sys_->cma_of(victim), SelectParams{}.cma_keep_threshold);
  EXPECT_EQ(sys_->overlay().in_degree(victim), before)
      << "transient failure should not trigger reassignment";
}

TEST_F(SelectRecoveryTest, AblationAlwaysReplaces) {
  SelectParams params;
  params.enable_cma_recovery = false;
  SelectSystem sys(g_, params, 22);
  sys.build();
  for (int round = 0; round < 20; ++round) sys.maintenance_round();
  PeerId victim = overlay::kInvalidPeer;
  for (PeerId p = 0; p < g_.num_nodes(); ++p) {
    if (sys.overlay().in_degree(p) >= 2) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, overlay::kInvalidPeer);
  sys.set_peer_online(victim, false);
  sys.maintenance_round();
  // Even with a good history, links are replaced immediately.
  EXPECT_EQ(sys.overlay().in_degree(victim), 0u);
}

TEST_F(SelectRecoveryTest, AvailabilityStaysHighUnderChurn) {
  sim::SessionChurn::Params churn_params;
  churn_params.session_median_s = 1200.0;
  churn_params.offline_median_s = 900.0;
  churn_params.min_online_fraction = 0.5;
  sim::SessionChurn churn(g_.num_nodes(), churn_params, 23);

  std::vector<PeerId> publishers;
  for (PeerId p = 0; p < 20; ++p) publishers.push_back(p * 13 % 400);

  for (int epoch = 1; epoch <= 10; ++epoch) {
    churn.advance_to(epoch * 600.0);
    for (PeerId p = 0; p < g_.num_nodes(); ++p) {
      sys_->set_peer_online(p, churn.online(p));
    }
    sys_->maintenance_round();
    const auto avail = pubsub::measure_availability(overlay::PubSubSystem(*sys_), publishers);
    EXPECT_GT(avail.availability(), 0.98)
        << "epoch " << epoch << " online=" << churn.online_fraction();
  }
}

TEST_F(SelectRecoveryTest, RecoveredPeersRejoinRouting) {
  sys_->set_peer_online(5, false);
  for (int i = 0; i < 6; ++i) sys_->maintenance_round();
  sys_->set_peer_online(5, true);
  sys_->maintenance_round();
  // Ring repair must restore short links for the returned peer.
  EXPECT_NE(sys_->overlay().successor(5), overlay::kInvalidPeer);
}

}  // namespace
}  // namespace sel::core
