// Acceptance check for the tie-strength cache: on the paper-scale 10k-peer
// profile, a warm gossip round must execute at least 2x fewer
// common-neighbour merges than it issues queries — the repeat friend pairs
// of Alg. 3/4 answer from the cache instead of re-merging adjacency lists.
#include <gtest/gtest.h>

#include "common/env.hpp"
#include "graph/profiles.hpp"
#include "select/protocol.hpp"

namespace sel::core {
namespace {

TEST(TieStrengthAcceptance, WarmRoundHalvesMergeExecutions) {
  const std::size_t n = scaled(10'000, 2'000);
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, 42);
  SelectSystem sys(g, SelectParams{}, 42);
  sys.join_all();
  // Fixed warm-up (not run_to_convergence) to bound runtime: 8 rounds give
  // every peer ~24 partner samples, enough for repeat pairs to dominate.
  for (int r = 0; r < 8; ++r) sys.run_round();

  const graph::TieStrengthIndex::Stats warm = sys.tie_stats();
  sys.run_round();
  const graph::TieStrengthIndex::Stats after = sys.tie_stats();

  const auto queries = after.queries() - warm.queries();
  const auto merges = after.merges() - warm.merges();
  ASSERT_GT(queries, 0u);
  // The acceptance bar: >= 2x fewer merges than queries in a warm round.
  EXPECT_GE(queries, 2 * merges)
      << "warm-round merge rate too high: " << merges << " merges over "
      << queries << " queries";
  // And the exchange path must actually flow through the cache.
  EXPECT_GT(after.hits, 0u);
}

}  // namespace
}  // namespace sel::core
