#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sel::sim {
namespace {

TEST(RoundChurn, OfflineSetRespectsCapAndUniqueness) {
  RoundChurn churn(100, RoundChurn::Params{.mu = 3.0, .sigma = 1.0,
                                           .max_fraction = 0.2},
                   1);
  for (int round = 0; round < 50; ++round) {
    const auto offline = churn.draw_offline_set();
    EXPECT_LE(offline.size(), 20u);
    std::set<std::uint32_t> unique(offline.begin(), offline.end());
    EXPECT_EQ(unique.size(), offline.size());
    for (const auto p : offline) EXPECT_LT(p, 100u);
    EXPECT_TRUE(std::is_sorted(offline.begin(), offline.end()));
  }
}

TEST(RoundChurn, LognormalProducesVariedSizes) {
  RoundChurn churn(10'000, RoundChurn::Params{.mu = 3.0, .sigma = 1.0,
                                              .max_fraction = 0.5},
                   2);
  std::set<std::size_t> sizes;
  for (int round = 0; round < 40; ++round) {
    sizes.insert(churn.draw_offline_set().size());
  }
  EXPECT_GT(sizes.size(), 5u);
}

TEST(RoundChurn, ExtremeLognormalDrawsStillRespectCap) {
  // mu = 60 puts the lognormal median near e^60 ≈ 1e26 — far beyond
  // LLONG_MAX, where an unclamped llround would be undefined behaviour. The
  // draw must saturate at the max_fraction cap instead.
  RoundChurn churn(200, RoundChurn::Params{.mu = 60.0, .sigma = 10.0,
                                           .max_fraction = 0.3},
                   13);
  for (int round = 0; round < 20; ++round) {
    const auto offline = churn.draw_offline_set();
    EXPECT_LE(offline.size(), 60u);
  }
}

TEST(RoundChurn, ZeroMaxFractionTakesNobodyOffline) {
  RoundChurn churn(100, RoundChurn::Params{.mu = 3.0, .sigma = 1.0,
                                           .max_fraction = 0.0},
                   17);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(churn.draw_offline_set().empty());
  }
}

TEST(RoundChurn, Deterministic) {
  RoundChurn a(500, {}, 7);
  RoundChurn b(500, {}, 7);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(a.draw_offline_set(), b.draw_offline_set());
  }
}

TEST(SessionChurn, StartsFullyOnline) {
  SessionChurn churn(50, {}, 1);
  EXPECT_EQ(churn.online_count(), 50u);
  EXPECT_DOUBLE_EQ(churn.online_fraction(), 1.0);
}

TEST(SessionChurn, OnlineCountMatchesFlags) {
  SessionChurn churn(200, {}, 3);
  churn.advance_to(3600.0);
  std::size_t count = 0;
  for (std::size_t p = 0; p < 200; ++p) {
    if (churn.online(p)) ++count;
  }
  EXPECT_EQ(count, churn.online_count());
}

TEST(SessionChurn, RespectsAvailabilityFloor) {
  SessionChurn::Params params;
  params.session_median_s = 100.0;
  params.offline_median_s = 1000.0;  // strong pull toward offline
  params.min_online_fraction = 0.5;
  SessionChurn churn(100, params, 5);
  for (double t = 0.0; t <= 36'000.0; t += 600.0) {
    churn.advance_to(t);
    EXPECT_GE(churn.online_fraction(), 0.5)
        << "floor violated at t=" << t;
  }
}

TEST(SessionChurn, ProducesChurnOverTime) {
  SessionChurn::Params params;
  params.session_median_s = 600.0;
  params.offline_median_s = 600.0;
  SessionChurn churn(300, params, 7);
  churn.advance_to(7200.0);
  EXPECT_LT(churn.online_count(), 300u);  // someone went offline
  EXPECT_GT(churn.online_count(), 0u);
}

TEST(SessionChurn, DeparturesAndArrivalsAreConsistent) {
  SessionChurn churn(100, {}, 9);
  std::vector<bool> prev(100);
  for (std::size_t p = 0; p < 100; ++p) prev[p] = churn.online(p);
  churn.advance_to(1800.0);
  for (const auto p : churn.last_departures()) {
    // A peer that departed and returned within the window appears in both
    // lists; otherwise it must now be offline.
    const bool returned =
        std::find(churn.last_arrivals().begin(), churn.last_arrivals().end(),
                  p) != churn.last_arrivals().end();
    EXPECT_TRUE(returned || !churn.online(p));
  }
  for (const auto p : churn.last_arrivals()) {
    // A peer that departed and came back in the same window appears in both
    // lists; the end state decides.
    EXPECT_TRUE(churn.online(p) ||
                std::find(churn.last_departures().begin(),
                          churn.last_departures().end(),
                          p) != churn.last_departures().end());
  }
}

TEST(SessionChurn, NeverCrossesAvailabilityFloorUnderExtremeParams) {
  // Near-degenerate lognormals: sessions a few seconds long, absences with
  // sigma large enough that raw draws underflow toward 0 or explode toward
  // +inf. The floor must hold at every sampled instant and advance_to()
  // must terminate (duration draws are clamped to >= 1 s).
  SessionChurn::Params params;
  params.session_median_s = 2.0;
  params.session_sigma = 40.0;
  params.offline_median_s = 3600.0;
  params.offline_sigma = 40.0;
  params.min_online_fraction = 0.75;
  SessionChurn churn(64, params, 21);
  for (double t = 0.0; t <= 3600.0; t += 30.0) {
    churn.advance_to(t);
    EXPECT_GE(churn.online_fraction(), 0.75) << "floor violated at t=" << t;
  }
}

TEST(SessionChurn, FloorCountUsesCeiling) {
  // 10 peers with a 0.55 floor: ceil(5.5) = 6 peers must stay online — a
  // floor(5.5) = 5 implementation is off by one.
  SessionChurn::Params params;
  params.session_median_s = 5.0;
  params.offline_median_s = 10'000.0;  // departures effectively permanent
  params.min_online_fraction = 0.55;
  SessionChurn churn(10, params, 23);
  churn.advance_to(10'000.0);
  EXPECT_GE(churn.online_count(), 6u);
}

TEST(SessionChurn, Deterministic) {
  SessionChurn a(100, {}, 11);
  SessionChurn b(100, {}, 11);
  a.advance_to(3600.0);
  b.advance_to(3600.0);
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_EQ(a.online(p), b.online(p));
  }
}

}  // namespace
}  // namespace sel::sim
