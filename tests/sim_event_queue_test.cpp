#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace sel::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&order](double) { order.push_back(3); });
  q.schedule(1.0, [&order](double) { order.push_back(1); });
  q.schedule(2.0, [&order](double) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i](double) { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&seen](double now) { seen = now; });
  q.run_next();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void(double)> chain = [&](double now) {
    ++fired;
    if (fired < 4) q.schedule(now + 1.0, chain);
  };
  q.schedule(1.0, chain);
  const std::size_t count = q.run_all();
  EXPECT_EQ(count, 4u);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilFiresOnlyDueEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired](double) { ++fired; });
  q.schedule(2.0, [&fired](double) { ++fired; });
  q.schedule(5.0, [&fired](double) { ++fired; });
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, ScheduleInUsesRelativeDelay) {
  EventQueue q;
  q.run_until(3.0);
  double seen = 0.0;
  q.schedule_in(2.0, [&seen](double now) { seen = now; });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  EXPECT_TRUE(std::isinf(q.next_time()));
  q.schedule(7.0, [](double) {});
  q.schedule(4.0, [](double) {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
}

TEST(EventQueue, RunAllRespectsBackstop) {
  EventQueue q;
  std::function<void(double)> forever = [&](double now) {
    q.schedule(now + 1.0, forever);
  };
  q.schedule(0.0, forever);
  EXPECT_EQ(q.run_all(100), 100u);
}

TEST(EventQueue, CallbackStateSurvivesInterleavedPopsAndPushes) {
  // Regression for the const_cast-move out of priority_queue::top(): the
  // callback was moved from the (const) heap top in place, so a pop
  // interleaved with pushes could sift a hollowed-out entry and invoke it.
  // Each callback owns its payload through a shared_ptr; a hollow
  // invocation shows up as a null payload or a missing value.
  EventQueue q;
  std::vector<int> fired;
  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) {
    auto payload = std::make_shared<int>(i);
    q.schedule(static_cast<double>(i % 7),
               [&q, &fired, payload](double now) {
                 ASSERT_NE(payload, nullptr);
                 fired.push_back(*payload);
                 if (*payload % 3 == 0) {
                   q.schedule(now + 0.25,
                              [&fired](double) { fired.push_back(-1); });
                 }
               });
  }
  q.run_all();
  std::vector<int> primary;
  for (const int v : fired) {
    if (v >= 0) primary.push_back(v);
  }
  std::sort(primary.begin(), primary.end());
  ASSERT_EQ(primary.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(primary[i], i);
  EXPECT_EQ(fired.size() - primary.size(),
            static_cast<std::size_t>((kEvents + 2) / 3));
}

TEST(EventQueue, PastSchedulingAborts) {
  EventQueue q;
  q.run_until(5.0);
  EXPECT_DEATH(q.schedule(1.0, [](double) {}), "Precondition");
}

TEST(EventQueue, CancelPendingEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&order](double) { order.push_back(1); });
  const auto h = q.schedule(2.0, [&order](double) { order.push_back(2); });
  q.schedule(3.0, [&order](double) { order.push_back(3); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 2u);
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelReturnsFalseForInvalidFiredOrDoubleCancel) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventQueue::Handle{}));
  const auto fired = q.schedule(1.0, [](double) {});
  const auto cancelled = q.schedule(2.0, [](double) {});
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.cancel(fired));  // already fired
  EXPECT_TRUE(q.cancel(cancelled));
  EXPECT_FALSE(q.cancel(cancelled));  // double cancel
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledFrontNeverSurfacesInNextTime) {
  EventQueue q;
  const auto front = q.schedule(1.0, [](double) {});
  q.schedule(2.0, [](double) {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(front));
  // The cancelled entry must be invisible: next_time() reports the live
  // event and run_until(1.5) fires nothing.
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.run_until(1.5), 0u);
  EXPECT_EQ(q.run_until(2.5), 1u);
}

TEST(EventQueue, CallbackCanCancelLaterEvent) {
  EventQueue q;
  std::vector<int> order;
  EventQueue::Handle doomed;
  q.schedule(1.0, [&](double) {
    order.push_back(1);
    EXPECT_TRUE(q.cancel(doomed));
  });
  doomed = q.schedule(1.0, [&order](double) { order.push_back(2); });
  q.schedule(1.0, [&order](double) { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EqualTimeFifoHoldsAcrossMidRunScheduling) {
  // Regression: a callback scheduling events *at the current time* while
  // run_next() is mid-drain must still see them fire after every
  // already-scheduled equal-time event (FIFO by sequence number).
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double now) {
    order.push_back(0);
    q.schedule(now, [&order](double) { order.push_back(10); });
    q.schedule(now, [&order](double) { order.push_back(11); });
  });
  q.schedule(1.0, [&order](double) { order.push_back(1); });
  q.schedule(1.0, [&order](double) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11}));
}

TEST(EventQueue, SeededTieBreakPermutesEqualTimeOrder) {
  const auto order_with_seed = [](std::uint64_t seed) {
    EventQueue q(seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      q.schedule(1.0, [&order, i](double) { order.push_back(i); });
    }
    q.run_all();
    return order;
  };
  const auto fifo = order_with_seed(0);
  const auto seeded = order_with_seed(0x5eed);
  std::vector<int> expected(16);
  for (int i = 0; i < 16; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(fifo, expected);
  // Same multiset, different order — and reproducible per seed.
  auto sorted = seeded;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expected);
  EXPECT_NE(seeded, expected);
  EXPECT_EQ(order_with_seed(0x5eed), seeded);
}

TEST(EventQueue, SeededTieBreakKeepsTimeOrder) {
  EventQueue q(0x5eed);
  std::vector<int> order;
  q.schedule(3.0, [&order](double) { order.push_back(3); });
  q.schedule(1.0, [&order](double) { order.push_back(1); });
  q.schedule(2.0, [&order](double) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sel::sim
