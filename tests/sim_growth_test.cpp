#include "sim/growth.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace sel::sim {
namespace {

TEST(Growth, EveryNodeJoinsExactlyOnce) {
  const auto g = graph::holme_kim(300, 3, 0.5, 1);
  const auto schedule = growth_schedule(g, GrowthParams{}, 2);
  EXPECT_EQ(schedule.size(), 300u);
  std::set<graph::NodeId> seen;
  for (const auto& e : schedule) seen.insert(e.user);
  EXPECT_EQ(seen.size(), 300u);
}

TEST(Growth, InviterJoinedEarlierAndIsFriend) {
  const auto g = graph::holme_kim(400, 3, 0.5, 3);
  const auto schedule = growth_schedule(g, GrowthParams{}, 4);
  std::set<graph::NodeId> joined;
  for (const auto& e : schedule) {
    if (e.inviter != graph::kInvalidNode) {
      EXPECT_TRUE(joined.contains(e.inviter))
          << "inviter must have joined first";
      EXPECT_TRUE(g.has_edge(e.user, e.inviter))
          << "inviter must be a social friend";
    }
    joined.insert(e.user);
  }
}

TEST(Growth, FirstJoinHasNoInviter) {
  const auto g = graph::holme_kim(100, 2, 0.3, 5);
  const auto schedule = growth_schedule(g, GrowthParams{}, 6);
  EXPECT_EQ(schedule.front().inviter, graph::kInvalidNode);
  EXPECT_EQ(schedule.front().step, 0u);
}

TEST(Growth, StepsAreMonotone) {
  const auto g = graph::holme_kim(300, 3, 0.5, 7);
  const auto schedule = growth_schedule(g, GrowthParams{}, 8);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].step, schedule[i].step);
  }
}

TEST(Growth, DecayStretchesSchedule) {
  const auto g = graph::holme_kim(500, 3, 0.5, 9);
  GrowthParams fast{.initial_rate = 64.0, .decay = 0.0};
  GrowthParams slow{.initial_rate = 64.0, .decay = 0.2};
  const auto steps_fast = schedule_steps(growth_schedule(g, fast, 10));
  const auto steps_slow = schedule_steps(growth_schedule(g, slow, 10));
  // Decay shrinks per-step batches toward 1/step, so more steps are needed.
  EXPECT_GT(steps_slow, steps_fast);
}

TEST(Growth, Deterministic) {
  const auto g = graph::holme_kim(200, 3, 0.5, 11);
  const auto a = growth_schedule(g, GrowthParams{}, 12);
  const auto b = growth_schedule(g, GrowthParams{}, 12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].inviter, b[i].inviter);
    EXPECT_EQ(a[i].step, b[i].step);
  }
}

TEST(Growth, DisconnectedComponentsGetIndependentSeeds) {
  // Two disjoint triangles: at least two independent (no-inviter) joins.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  const auto schedule = growth_schedule(b.build(), GrowthParams{}, 13);
  std::size_t independent = 0;
  for (const auto& e : schedule) {
    if (e.inviter == graph::kInvalidNode) ++independent;
  }
  EXPECT_GE(independent, 2u);
}

TEST(Growth, IsolatedNodesJoinIndependently) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  // 2 and 3 isolated.
  const auto schedule = growth_schedule(b.build(), GrowthParams{}, 14);
  EXPECT_EQ(schedule.size(), 4u);
  for (const auto& e : schedule) {
    if (e.user == 2 || e.user == 3) {
      EXPECT_EQ(e.inviter, graph::kInvalidNode);
    }
  }
}

TEST(Growth, EmptyGraph) {
  const auto schedule =
      growth_schedule(graph::GraphBuilder(0).build(), GrowthParams{}, 15);
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule_steps(schedule), 0u);
}

}  // namespace
}  // namespace sel::sim
