#include "sim/superstep.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace sel::sim {
namespace {

/// Each vertex pushes its value to the next vertex for a fixed number of
/// rounds; the accumulated sums are deterministic.
struct TokenRing {
  explicit TokenRing(std::size_t n) : sums(n, 0), rounds_left(n, 3) {}

  std::vector<long long> sums;
  std::vector<int> rounds_left;

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) sums[v] += msg.payload;
    if (rounds_left[v] > 0) {
      --rounds_left[v];
      out.send(static_cast<VertexId>((v + 1) % sums.size()),
               static_cast<int>(v));
    }
  }
};

TEST(Superstep, MessagesDeliverNextRound) {
  TokenRing program(4);
  SuperstepEngine<TokenRing, int> engine(4, program);
  engine.step();  // everyone sends once
  // Nothing received yet during round 1's compute.
  EXPECT_EQ(std::accumulate(program.sums.begin(), program.sums.end(), 0LL), 0);
  engine.step();  // now inboxes carry round-1 messages
  EXPECT_EQ(std::accumulate(program.sums.begin(), program.sums.end(), 0LL),
            0 + 1 + 2 + 3);
}

TEST(Superstep, QuiescesWhenNoMessages) {
  TokenRing program(3);
  SuperstepEngine<TokenRing, int> engine(3, program);
  const std::size_t rounds = engine.run_until_quiescent(100);
  // 3 sending rounds + 1 final delivery round.
  EXPECT_EQ(rounds, 4u);
}

TEST(Superstep, TotalsMatchExpectation) {
  TokenRing program(5);
  SuperstepEngine<TokenRing, int> engine(5, program);
  engine.run_until_quiescent(100);
  // Vertex v receives 3 messages from its predecessor (value = pred id).
  for (std::size_t v = 0; v < 5; ++v) {
    const long long pred = (v + 4) % 5;
    EXPECT_EQ(program.sums[v], 3 * pred);
  }
}

TEST(Superstep, DeterministicAcrossThreadCounts) {
  TokenRing serial(64);
  SuperstepEngine<TokenRing, int> engine1(64, serial);
  engine1.run_until_quiescent(100);

  TokenRing parallel(64);
  SuperstepEngine<TokenRing, int> engine2(64, parallel,
                                          Executor::pooled(4u));
  engine2.run_until_quiescent(100);

  EXPECT_EQ(serial.sums, parallel.sums);
}

/// Seeded mixer program: every vertex sends a pseudo-random number of
/// messages to pseudo-random destinations each round and records its full
/// inbox verbatim — the strongest observable of delivery determinism.
struct InboxRecorder {
  explicit InboxRecorder(std::size_t n, std::uint64_t seed)
      : n_(n), seed_(seed), round_of(n, 0), history(n) {}

  std::size_t n_;
  std::uint64_t seed_;
  /// Per-vertex round clock — shared state would race under a pooled
  /// executor (compute() runs concurrently across chunks).
  std::vector<std::uint64_t> round_of;
  /// history[v] = flat (round, src, seq, payload) stream, in arrival order.
  std::vector<std::vector<std::uint64_t>> history;

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void compute(VertexId v, std::span<const Envelope<std::uint64_t>> inbox,
               Mailbox<std::uint64_t>& out) {
    const std::uint64_t round = round_of[v]++;
    for (const auto& m : inbox) {
      auto& h = history[v];
      h.push_back(round);
      h.push_back(m.src);
      h.push_back(m.seq);
      h.push_back(m.payload);
    }
    if (round >= 6) return;
    const std::uint64_t base = mix(seed_ ^ (round * 1315423911ULL) ^ v);
    const std::size_t fan = 1 + (base % 5);
    for (std::size_t i = 0; i < fan; ++i) {
      const std::uint64_t draw = mix(base + i);
      out.send(static_cast<VertexId>(draw % n_), draw >> 32);
    }
  }
};

// Same seed through executors of width 1, 2 and 8: every vertex's inbox
// stream (round, src, seq, payload — the whole observable message plane)
// must be identical, and so must the engine's RunReport counter deltas.
TEST(Superstep, InboxStreamsIdenticalAcrossExecutorWidths) {
  constexpr std::size_t kN = 97;  // not a multiple of any chunk count
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& rounds_c = reg.counter("sim.superstep.rounds");
  obs::Counter& messages_c = reg.counter("sim.superstep.messages");

  struct RunResult {
    std::vector<std::vector<std::uint64_t>> history;
    std::int64_t rounds_delta = 0;
    std::int64_t messages_delta = 0;
  };
  auto run = [&](Executor exec) {
    const std::int64_t rounds_before = rounds_c.value();
    const std::int64_t messages_before = messages_c.value();
    InboxRecorder program(kN, 0xfeedULL);
    SuperstepEngine<InboxRecorder, std::uint64_t> engine(kN, program,
                                                         std::move(exec));
    engine.run_until_quiescent(32);
    return RunResult{std::move(program.history),
                     rounds_c.value() - rounds_before,
                     messages_c.value() - messages_before};
  };

  const RunResult serial = run(Executor::inline_exec());
  ASSERT_GT(serial.messages_delta, 0);
  for (const unsigned width : {2u, 8u}) {
    const RunResult pooled = run(Executor::pooled(width));
    EXPECT_EQ(serial.history, pooled.history) << "width=" << width;
    EXPECT_EQ(serial.rounds_delta, pooled.rounds_delta) << "width=" << width;
    EXPECT_EQ(serial.messages_delta, pooled.messages_delta)
        << "width=" << width;
  }
}

/// Constant-volume program for the allocation test: every vertex messages
/// its successor forever, so message volume is flat after round 1.
struct SteadyRing {
  explicit SteadyRing(std::size_t n) : n_(n), absorbed(n, 0) {}
  std::size_t n_;
  std::vector<std::uint64_t> absorbed;  ///< per-vertex: no cross-chunk races

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& m : inbox) {
      absorbed[v] += static_cast<unsigned>(m.payload);
    }
    out.send(static_cast<VertexId>((v + 1) % n_), static_cast<int>(v % 7));
  }
};

// The zero-allocation contract: once message volume stops growing, the
// engine's buffers stop growing — steady-state steps reuse the arenas.
TEST(Superstep, SteadyStateDoesNotGrowBuffers) {
  for (const unsigned width : {0u, 4u}) {  // 0 = inline executor
    SteadyRing program(64);
    SuperstepEngine<SteadyRing, int> engine(
        64, program, width == 0 ? Executor() : Executor::pooled(width));
    for (int warm = 0; warm < 3; ++warm) engine.step();
    const std::size_t grown = engine.buffer_growth_events();
    for (int r = 0; r < 50; ++r) engine.step();
    EXPECT_EQ(engine.buffer_growth_events(), grown) << "width=" << width;
  }
}

struct Broadcaster {
  explicit Broadcaster(std::size_t n) : received(n, 0) {}
  std::vector<int> received;
  bool sent = false;

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) received[v] += msg.payload;
    if (v == 0 && !sent) {
      sent = true;
      for (VertexId u = 1; u < received.size(); ++u) out.send(u, 7);
    }
  }
};

TEST(Superstep, FanOutReachesAllVertices) {
  Broadcaster program(10);
  SuperstepEngine<Broadcaster, int> engine(10, program);
  engine.run_until_quiescent(10);
  for (std::size_t v = 1; v < 10; ++v) EXPECT_EQ(program.received[v], 7);
  EXPECT_EQ(program.received[0], 0);
}

struct InboxOrderProbe {
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> seen;
  explicit InboxOrderProbe(std::size_t n) : seen(n) {}

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) seen[v].emplace_back(msg.src, msg.seq);
    if (seen[v].empty() && v != 0) {
      // First round: every vertex != 0 sends two messages to vertex 0.
      out.send(0, 1);
      out.send(0, 2);
    }
  }
};

TEST(Superstep, InboxSortedBySrcThenSeq) {
  InboxOrderProbe program(6);
  SuperstepEngine<InboxOrderProbe, int> engine(6, program);
  engine.step();
  engine.step();
  const auto& inbox = program.seen[0];
  ASSERT_EQ(inbox.size(), 10u);  // 5 senders x 2 messages
  for (std::size_t i = 1; i < inbox.size(); ++i) {
    EXPECT_TRUE(inbox[i - 1] < inbox[i]) << "delivery order not canonical";
  }
}

TEST(Superstep, RoundCounterAdvances) {
  TokenRing program(2);
  SuperstepEngine<TokenRing, int> engine(2, program);
  EXPECT_EQ(engine.round(), 0u);
  engine.step();
  EXPECT_EQ(engine.round(), 1u);
  engine.step();
  EXPECT_EQ(engine.round(), 2u);
}

}  // namespace
}  // namespace sel::sim
