#include "sim/superstep.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace sel::sim {
namespace {

/// Each vertex pushes its value to the next vertex for a fixed number of
/// rounds; the accumulated sums are deterministic.
struct TokenRing {
  explicit TokenRing(std::size_t n) : sums(n, 0), rounds_left(n, 3) {}

  std::vector<long long> sums;
  std::vector<int> rounds_left;

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) sums[v] += msg.payload;
    if (rounds_left[v] > 0) {
      --rounds_left[v];
      out.send(static_cast<VertexId>((v + 1) % sums.size()),
               static_cast<int>(v));
    }
  }
};

TEST(Superstep, MessagesDeliverNextRound) {
  TokenRing program(4);
  SuperstepEngine<TokenRing, int> engine(4, program);
  engine.step();  // everyone sends once
  // Nothing received yet during round 1's compute.
  EXPECT_EQ(std::accumulate(program.sums.begin(), program.sums.end(), 0LL), 0);
  engine.step();  // now inboxes carry round-1 messages
  EXPECT_EQ(std::accumulate(program.sums.begin(), program.sums.end(), 0LL),
            0 + 1 + 2 + 3);
}

TEST(Superstep, QuiescesWhenNoMessages) {
  TokenRing program(3);
  SuperstepEngine<TokenRing, int> engine(3, program);
  const std::size_t rounds = engine.run_until_quiescent(100);
  // 3 sending rounds + 1 final delivery round.
  EXPECT_EQ(rounds, 4u);
}

TEST(Superstep, TotalsMatchExpectation) {
  TokenRing program(5);
  SuperstepEngine<TokenRing, int> engine(5, program);
  engine.run_until_quiescent(100);
  // Vertex v receives 3 messages from its predecessor (value = pred id).
  for (std::size_t v = 0; v < 5; ++v) {
    const long long pred = (v + 4) % 5;
    EXPECT_EQ(program.sums[v], 3 * pred);
  }
}

TEST(Superstep, DeterministicAcrossThreadCounts) {
  TokenRing serial(64);
  SuperstepEngine<TokenRing, int> engine1(64, serial, nullptr);
  engine1.run_until_quiescent(100);

  ThreadPool pool(4);
  TokenRing parallel(64);
  SuperstepEngine<TokenRing, int> engine2(64, parallel, &pool);
  engine2.run_until_quiescent(100);

  EXPECT_EQ(serial.sums, parallel.sums);
}

struct Broadcaster {
  explicit Broadcaster(std::size_t n) : received(n, 0) {}
  std::vector<int> received;
  bool sent = false;

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) received[v] += msg.payload;
    if (v == 0 && !sent) {
      sent = true;
      for (VertexId u = 1; u < received.size(); ++u) out.send(u, 7);
    }
  }
};

TEST(Superstep, FanOutReachesAllVertices) {
  Broadcaster program(10);
  SuperstepEngine<Broadcaster, int> engine(10, program);
  engine.run_until_quiescent(10);
  for (std::size_t v = 1; v < 10; ++v) EXPECT_EQ(program.received[v], 7);
  EXPECT_EQ(program.received[0], 0);
}

struct InboxOrderProbe {
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> seen;
  explicit InboxOrderProbe(std::size_t n) : seen(n) {}

  void compute(VertexId v, std::span<const Envelope<int>> inbox,
               Mailbox<int>& out) {
    for (const auto& msg : inbox) seen[v].emplace_back(msg.src, msg.seq);
    if (seen[v].empty() && v != 0) {
      // First round: every vertex != 0 sends two messages to vertex 0.
      out.send(0, 1);
      out.send(0, 2);
    }
  }
};

TEST(Superstep, InboxSortedBySrcThenSeq) {
  InboxOrderProbe program(6);
  SuperstepEngine<InboxOrderProbe, int> engine(6, program);
  engine.step();
  engine.step();
  const auto& inbox = program.seen[0];
  ASSERT_EQ(inbox.size(), 10u);  // 5 senders x 2 messages
  for (std::size_t i = 1; i < inbox.size(); ++i) {
    EXPECT_TRUE(inbox[i - 1] < inbox[i]) << "delivery order not canonical";
  }
}

TEST(Superstep, RoundCounterAdvances) {
  TokenRing program(2);
  SuperstepEngine<TokenRing, int> engine(2, program);
  EXPECT_EQ(engine.round(), 0u);
  engine.step();
  EXPECT_EQ(engine.round(), 1u);
  engine.step();
  EXPECT_EQ(engine.round(), 2u);
}

}  // namespace
}  // namespace sel::sim
