#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sel::sim {
namespace {

TEST(ChurnTrace, RecordCapturesTransitions) {
  SessionChurn::Params params;
  params.session_median_s = 600.0;
  params.offline_median_s = 600.0;
  SessionChurn churn(100, params, 1);
  const auto trace = ChurnTrace::record(churn, 7200.0, 300.0);
  EXPECT_FALSE(trace.empty());
  EXPECT_LE(trace.duration_s(), 7200.0);
  // Events sorted by time.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].time_s, trace.events()[i].time_s);
  }
}

TEST(ChurnTrace, ReplayMatchesOriginalProcess) {
  SessionChurn::Params params;
  params.session_median_s = 600.0;
  params.offline_median_s = 600.0;
  SessionChurn recorder(80, params, 3);
  const auto trace = ChurnTrace::record(recorder, 3600.0, 300.0);

  SessionChurn original(80, params, 3);
  TraceReplayer replay(trace, 80);
  for (double t = 300.0; t <= 3600.0; t += 300.0) {
    original.advance_to(t);
    replay.advance_to(t);
    for (std::size_t p = 0; p < 80; ++p) {
      ASSERT_EQ(replay.online(p), original.online(p))
          << "peer " << p << " at t=" << t;
    }
    EXPECT_EQ(replay.online_count(), original.online_count());
  }
}

TEST(ChurnTrace, SaveLoadRoundTrip) {
  SessionChurn::Params params;
  params.session_median_s = 400.0;
  params.offline_median_s = 400.0;
  SessionChurn churn(50, params, 5);
  const auto trace = ChurnTrace::record(churn, 2400.0, 200.0);

  std::stringstream buffer;
  ASSERT_TRUE(trace.save(buffer));
  const auto loaded = ChurnTrace::load(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->events().size(), trace.events().size());
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->events()[i].time_s, trace.events()[i].time_s);
    EXPECT_EQ(loaded->events()[i].peer, trace.events()[i].peer);
    EXPECT_EQ(loaded->events()[i].online, trace.events()[i].online);
  }
}

TEST(ChurnTrace, LoadRejectsGarbage) {
  std::stringstream bad("1.0 5 2\n");  // online flag must be 0/1
  EXPECT_FALSE(ChurnTrace::load(bad).has_value());
  std::stringstream unordered("5.0 1 0\n1.0 2 1\n");
  EXPECT_FALSE(ChurnTrace::load(unordered).has_value());
  std::stringstream truncated("1.0 5\n");
  EXPECT_FALSE(ChurnTrace::load(truncated).has_value());
}

TEST(ChurnTrace, LoadEmptyIsValid) {
  std::stringstream empty("");
  const auto trace = ChurnTrace::load(empty);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->empty());
  EXPECT_DOUBLE_EQ(trace->duration_s(), 0.0);
}

TEST(TraceReplayer, PartialAdvanceAppliesPrefix) {
  std::vector<ChurnEvent> events{
      {1.0, 0, false}, {2.0, 1, false}, {3.0, 0, true}};
  ChurnTrace trace(events);
  TraceReplayer replay(trace, 4);
  EXPECT_EQ(replay.online_count(), 4u);
  const auto first = replay.advance_to(1.5);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(replay.online(0));
  EXPECT_EQ(replay.online_count(), 3u);
  EXPECT_FALSE(replay.finished());
  replay.advance_to(10.0);
  EXPECT_TRUE(replay.online(0));
  EXPECT_FALSE(replay.online(1));
  EXPECT_TRUE(replay.finished());
}

TEST(TraceReplayer, DuplicateTransitionsAreIdempotent) {
  std::vector<ChurnEvent> events{{1.0, 0, false}, {2.0, 0, false}};
  ChurnTrace trace(events);
  TraceReplayer replay(trace, 2);
  replay.advance_to(5.0);
  EXPECT_EQ(replay.online_count(), 1u);
}

}  // namespace
}  // namespace sel::sim
