#include "sim/trial.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace sel::sim {
namespace {

TEST(TrialRunner, AggregatesMetricsAcrossTrials) {
  const auto summary = run_trials(10, 1, [](std::uint64_t seed) {
    MetricMap m;
    m["constant"] = 4.0;
    m["seed_low_bit"] = static_cast<double>(seed & 1);
    return m;
  });
  EXPECT_DOUBLE_EQ(summary.mean("constant"), 4.0);
  EXPECT_EQ(summary.metrics.at("constant").count(), 10u);
  EXPECT_GE(summary.mean("seed_low_bit"), 0.0);
  EXPECT_LE(summary.mean("seed_low_bit"), 1.0);
}

TEST(TrialRunner, TrialSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  (void)run_trials(20, 7, [&seeds](std::uint64_t seed) {
    seeds.insert(seed);
    return MetricMap{};
  });
  EXPECT_EQ(seeds.size(), 20u);
}

TEST(TrialRunner, SeedsDeterministicPerRootSeed) {
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  (void)run_trials(5, 3, [&first](std::uint64_t s) {
    first.push_back(s);
    return MetricMap{};
  });
  (void)run_trials(5, 3, [&second](std::uint64_t s) {
    second.push_back(s);
    return MetricMap{};
  });
  EXPECT_EQ(first, second);
}

TEST(TrialRunner, DifferentRootSeedsGiveDifferentTrialSeeds) {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  (void)run_trials(5, 1, [&a](std::uint64_t s) {
    a.push_back(s);
    return MetricMap{};
  });
  (void)run_trials(5, 2, [&b](std::uint64_t s) {
    b.push_back(s);
    return MetricMap{};
  });
  EXPECT_NE(a, b);
}

TEST(TrialRunner, CiShrinksWithMoreTrials) {
  auto noisy = [](std::uint64_t seed) {
    Rng rng(seed);
    return MetricMap{{"x", rng.uniform()}};
  };
  const auto few = run_trials(4, 11, noisy);
  const auto many = run_trials(64, 11, noisy);
  EXPECT_GT(few.ci95("x"), many.ci95("x"));
}

TEST(TrialRunner, PooledExecutorMatchesSequentialBitForBit) {
  auto noisy = [](std::uint64_t seed) {
    Rng rng(seed);
    MetricMap m;
    m["x"] = rng.uniform();
    m["y"] = rng.normal();
    return m;
  };
  const auto serial = run_trials(24, 99, noisy);
  for (const unsigned width : {2u, 8u}) {
    const auto pooled =
        run_trials(24, 99, noisy, "", Executor::pooled(width));
    for (const auto& [name, stats] : serial.metrics) {
      // The fold is sequential in trial order regardless of executor width,
      // so the floating-point aggregates are exactly equal, not just close.
      const auto& p = pooled.metrics.at(name);
      EXPECT_EQ(stats.count(), p.count()) << name;
      EXPECT_EQ(stats.mean(), p.mean()) << name << " width=" << width;
      EXPECT_EQ(stats.ci95_halfwidth(), p.ci95_halfwidth())
          << name << " width=" << width;
    }
  }
}

TEST(TrialSummary, MeanOfMissingMetricAborts) {
  const auto summary = run_trials(2, 1, [](std::uint64_t) {
    return MetricMap{{"a", 1.0}};
  });
  EXPECT_DEATH((void)summary.mean("missing"), "Precondition");
}

}  // namespace
}  // namespace sel::sim
