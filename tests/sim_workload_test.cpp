#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace sel::sim {
namespace {

graph::SocialGraph small_graph() { return graph::holme_kim(200, 3, 0.5, 1); }

TEST(Workload, AllUsersPublishByDefault) {
  const auto g = small_graph();
  PublicationWorkload w(g, WorkloadParams{}, 2);
  EXPECT_EQ(w.num_publishers(), g.num_nodes());
}

TEST(Workload, PublisherFractionRespected) {
  const auto g = small_graph();
  WorkloadParams params;
  params.publisher_fraction = 0.3;
  PublicationWorkload w(g, params, 3);
  const double frac =
      static_cast<double>(w.num_publishers()) / static_cast<double>(g.num_nodes());
  EXPECT_NEAR(frac, 0.3, 0.12);
}

TEST(Workload, PostsSortedAndWithinHorizon) {
  const auto g = small_graph();
  PublicationWorkload w(g, WorkloadParams{}, 4);
  const auto posts = w.generate(3600.0, 5);
  EXPECT_FALSE(posts.empty());
  for (std::size_t i = 0; i < posts.size(); ++i) {
    EXPECT_GE(posts[i].time_s, 0.0);
    EXPECT_LT(posts[i].time_s, 3600.0);
    if (i > 0) {
      EXPECT_LE(posts[i - 1].time_s, posts[i].time_s);
    }
    EXPECT_LT(posts[i].publisher, g.num_nodes());
  }
}

TEST(Workload, PostCountScalesWithHorizon) {
  const auto g = small_graph();
  PublicationWorkload w(g, WorkloadParams{}, 6);
  const auto short_run = w.generate(1800.0, 7).size();
  const auto long_run = w.generate(7200.0, 7).size();
  EXPECT_GT(long_run, short_run * 2);
}

TEST(Workload, ZeroHorizonIsEmpty) {
  const auto g = small_graph();
  PublicationWorkload w(g, WorkloadParams{}, 8);
  EXPECT_TRUE(w.generate(0.0, 9).empty());
}

TEST(Workload, RatesAreHeavyTailedWithSkew) {
  const auto g = small_graph();
  WorkloadParams params;
  params.rate_skew = 1.2;
  PublicationWorkload w(g, params, 10);
  double max_rate = 0.0;
  double total = 0.0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    max_rate = std::max(max_rate, w.rate_per_s(u));
    total += w.rate_per_s(u);
  }
  const double mean = total / static_cast<double>(g.num_nodes());
  EXPECT_GT(max_rate, mean * 5.0);  // a few prolific posters
}

TEST(Workload, SamplePublishersPrefersHighRates) {
  const auto g = small_graph();
  WorkloadParams params;
  params.rate_skew = 1.5;
  PublicationWorkload w(g, params, 11);
  const auto sample = w.sample_publishers(2000, 12);
  ASSERT_EQ(sample.size(), 2000u);
  double sample_rate = 0.0;
  for (const auto u : sample) sample_rate += w.rate_per_s(u);
  sample_rate /= 2000.0;
  double mean_rate = 0.0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    mean_rate += w.rate_per_s(u);
  }
  mean_rate /= static_cast<double>(g.num_nodes());
  EXPECT_GT(sample_rate, mean_rate);  // rate-weighted sampling
}

TEST(Workload, Deterministic) {
  const auto g = small_graph();
  PublicationWorkload w1(g, WorkloadParams{}, 13);
  PublicationWorkload w2(g, WorkloadParams{}, 13);
  const auto a = w1.generate(600.0, 14);
  const auto b = w2.generate(600.0, 14);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].publisher, b[i].publisher);
  }
}

TEST(Workload, PoissonCountMatchesRate) {
  // Single-publisher graph: count over horizon ~ rate * horizon.
  graph::GraphBuilder b(1);
  const auto g = b.build();
  WorkloadParams params;
  params.median_posts_per_hour = 60.0;  // 1 per minute
  params.rate_skew = 0.0;               // no multiplier
  PublicationWorkload w(g, params, 15);
  const auto posts = w.generate(3600.0 * 20, 16);
  EXPECT_NEAR(static_cast<double>(posts.size()), 1200.0, 150.0);
}

}  // namespace
}  // namespace sel::sim
